package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anchor/internal/embedding"
)

func randomEmbedding(n, d int, seed int64) *embedding.Embedding {
	rng := rand.New(rand.NewSource(seed))
	e := embedding.New(n, d)
	for i := range e.Vectors.Data {
		e.Vectors.Data[i] = rng.NormFloat64()
	}
	return e
}

func TestQuantizeValueCount(t *testing.T) {
	e := randomEmbedding(50, 10, 1)
	for _, bits := range []int{1, 2, 4, 8} {
		clip := OptimalClip(e.Vectors.Data, bits)
		q := Quantize(e, bits, clip)
		distinct := map[float64]bool{}
		for _, v := range q.Vectors.Data {
			distinct[v] = true
		}
		if len(distinct) > 1<<uint(bits) {
			t.Fatalf("bits=%d: %d distinct values > 2^b", bits, len(distinct))
		}
		if q.Meta.Precision != bits {
			t.Fatalf("precision not recorded: %d", q.Meta.Precision)
		}
	}
}

func TestQuantizeFullPrecisionIsIdentity(t *testing.T) {
	e := randomEmbedding(10, 4, 2)
	q := Quantize(e, 32, 1)
	for i := range e.Vectors.Data {
		if q.Vectors.Data[i] != e.Vectors.Data[i] {
			t.Fatal("32-bit quantization must be identity")
		}
	}
	if q.Meta.Precision != FullPrecision {
		t.Fatal("precision should be 32")
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		e := randomEmbedding(20, 5, seed)
		for _, bits := range []int{1, 2, 4, 8} {
			clip := OptimalClip(e.Vectors.Data, bits)
			q1 := Quantize(e, bits, clip)
			q2 := Quantize(q1, bits, clip)
			for i := range q1.Vectors.Data {
				if math.Abs(q1.Vectors.Data[i]-q2.Vectors.Data[i]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeErrorBounded(t *testing.T) {
	// Within the clip interval, quantization error is at most step/2.
	e := randomEmbedding(100, 8, 3)
	bits := 4
	clip := OptimalClip(e.Vectors.Data, bits)
	step := 2 * clip / float64((int64(1)<<uint(bits))-1)
	q := Quantize(e, bits, clip)
	// Levels are float32-rounded, which can shift each one by up to
	// 2^-24·clip; 1e-7 absorbs that on top of the ideal-grid bound.
	for i, v := range e.Vectors.Data {
		if math.Abs(v) <= clip {
			if math.Abs(v-q.Vectors.Data[i]) > step/2+1e-7 {
				t.Fatalf("error %v exceeds step/2=%v", math.Abs(v-q.Vectors.Data[i]), step/2)
			}
		} else if math.Abs(q.Vectors.Data[i]) > clip+1e-7 {
			t.Fatal("clipped value outside [-clip, clip]")
		}
	}
}

func TestMorePrecisionLowerMSE(t *testing.T) {
	e := randomEmbedding(200, 10, 4)
	prev := math.Inf(1)
	for _, bits := range []int{1, 2, 4, 8, 16} {
		clip := OptimalClip(e.Vectors.Data, bits)
		q := Quantize(e, bits, clip)
		var mse float64
		for i := range e.Vectors.Data {
			d := e.Vectors.Data[i] - q.Vectors.Data[i]
			mse += d * d
		}
		if mse >= prev {
			t.Fatalf("MSE did not decrease at %d bits: %v >= %v", bits, mse, prev)
		}
		prev = mse
	}
}

func TestQuantizePairSharesClip(t *testing.T) {
	x := randomEmbedding(50, 6, 5)
	y := randomEmbedding(50, 6, 6)
	qx, qy := QuantizePair(x, y, 2)
	// All values of qy must come from qx's level set (shared clip).
	levelsX := map[float64]bool{}
	for _, v := range qx.Vectors.Data {
		levelsX[v] = true
	}
	clip := OptimalClip(x.Vectors.Data, 2)
	for _, lvl := range Levels(clip, 2) {
		levelsX[lvl] = true
	}
	for _, v := range qy.Vectors.Data {
		if !levelsX[v] {
			t.Fatalf("value %v of second embedding not on shared grid", v)
		}
	}
}

func TestQuantizePairFullPrecision(t *testing.T) {
	x := randomEmbedding(5, 3, 7)
	y := randomEmbedding(5, 3, 8)
	qx, qy := QuantizePair(x, y, 32)
	if qx.Meta.Precision != 32 || qy.Meta.Precision != 32 {
		t.Fatal("full precision pair should record 32 bits")
	}
	for i := range x.Vectors.Data {
		if qx.Vectors.Data[i] != x.Vectors.Data[i] || qy.Vectors.Data[i] != y.Vectors.Data[i] {
			t.Fatal("full precision pair should be identity")
		}
	}
}

func TestOptimalClipZeroData(t *testing.T) {
	if c := OptimalClip(make([]float64, 10), 4); c != 1 {
		t.Fatalf("zero data clip = %v, want fallback 1", c)
	}
}

func TestLevelsSymmetric(t *testing.T) {
	lv := Levels(1, 2)
	want := []float64{-1, -1.0 / 3, 1.0 / 3, 1}
	if len(lv) != 4 {
		t.Fatalf("levels = %v", lv)
	}
	for i := range want {
		// Levels are rounded to the nearest float32 (so quantized values
		// are exactly float32-representable), hence the ~1e-8 tolerance
		// on -1/3 instead of 1e-12.
		if math.Abs(lv[i]-want[i]) > 1e-7 {
			t.Fatalf("levels = %v, want %v", lv, want)
		}
		if lv[i] != float64(float32(lv[i])) {
			t.Fatalf("level %v not float32-representable", lv[i])
		}
	}
}

func TestOneBitIsSignQuantization(t *testing.T) {
	e := embedding.New(1, 4)
	copy(e.Vectors.Data, []float64{-2, -0.1, 0.1, 2})
	q := Quantize(e, 1, 1)
	want := []float64{-1, -1, 1, 1}
	for i := range want {
		if q.Vectors.Data[i] != want[i] {
			t.Fatalf("1-bit quantization = %v, want %v", q.Vectors.Data, want)
		}
	}
}

func TestQuantizeInvalidBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bits < 1")
		}
	}()
	Quantize(randomEmbedding(2, 2, 9), 0, 1)
}
