// Package experiments orchestrates the reproduction of every table and
// figure in the paper: it trains and caches embedding pairs over the
// dimension/precision/seed grid, trains downstream models, computes
// embedding distance measures, and renders paper-style result tables.
// Each experiment is registered under the paper's artifact id ("fig1",
// "table3", ...) and can be run from the CLI, the benchmarks, or tests.
package experiments

import (
	"anchor/internal/corpus"
	"anchor/internal/kge"
)

// Config scopes an experiment run. The dimension ladder maps the paper's
// {25, 50, 100, 200, 400, 800} onto a laptop-scale geometric ladder; the
// precision ladder {1, 2, 4, 8, 16, 32} is the paper's exactly.
type Config struct {
	Corpus     corpus.Config
	Algorithms []string
	Dims       []int
	Precisions []int
	Seeds      []int64

	// Workers is the goroutine budget for embedding training,
	// co-occurrence counting, distance-measure evaluation, and the
	// grid sweep itself (<= 0 selects all CPUs). A few shared helpers
	// (embedding alignment, downstream-model autodiff) use the matrix
	// package's all-CPU defaults regardless. Trained embeddings and
	// measure values are bitwise identical for every value, so it is a
	// pure throughput knob and never part of an experiment's identity.
	Workers int

	// TopWords is the number of most-frequent words over which embedding
	// distance measures are computed (the paper uses the top 10k).
	TopWords int
	// Alpha is the eigenspace instability exponent (paper: 3).
	Alpha float64
	// K is the k-NN measure's neighborhood size (paper: 5).
	K int
	// KNNQueries is the number of query words for the k-NN measure
	// (paper: 1000).
	KNNQueries int

	// SentimentTasks lists the sentiment datasets to evaluate
	// (subset of sst2, mr, subj, mpqa).
	SentimentTasks []string

	// NER grid: the BiLSTM is far more expensive than the linear models,
	// so its grid may be a subset of the main ladder.
	NEREnabled             bool
	NERDims, NERPrecisions []int
	NERSeeds               []int64

	// Knowledge graph extension (Section 6.1).
	KGEGraph               kge.GraphConfig
	KGEDims, KGEPrecisions []int
	KGESeeds               []int64

	// Contextual embedding extension (Section 6.2).
	BERTHiddens, BERTPrecisions []int
	BERTSeeds                   []int64
}

// SmallConfig is the miniature configuration used by tests: every code
// path exercised, seconds not minutes.
func SmallConfig() Config {
	return Config{
		Corpus:         corpus.TestConfig(),
		Algorithms:     []string{"mc", "cbow"},
		Dims:           []int{8, 16, 32},
		Precisions:     []int{1, 4, 32},
		Seeds:          []int64{1},
		TopWords:       120,
		Alpha:          3,
		K:              5,
		KNNQueries:     120,
		SentimentTasks: []string{"sst2", "subj"},
		NEREnabled:     true,
		NERDims:        []int{8, 32},
		NERPrecisions:  []int{1, 32},
		NERSeeds:       []int64{1},
		KGEGraph:       kge.TestGraphConfig(),
		KGEDims:        []int{4, 8, 16},
		KGEPrecisions:  []int{1, 4, 32},
		KGESeeds:       []int64{1},
		BERTHiddens:    []int{8, 16},
		BERTPrecisions: []int{1, 4, 32},
		BERTSeeds:      []int64{1},
	}
}

// BenchConfig is the scale the benchmark harness runs at: large enough
// for the paper's trends to be visible, small enough for a laptop bench
// session. The full-scale run is ReproConfig.
func BenchConfig() Config {
	ccfg := corpus.DefaultConfig()
	ccfg.VocabSize = 800
	ccfg.NumDocs = 400
	return Config{
		Corpus:         ccfg,
		Algorithms:     []string{"cbow", "glove", "mc"},
		Dims:           []int{8, 16, 32, 64, 128},
		Precisions:     []int{1, 2, 4, 8, 32},
		Seeds:          []int64{1, 2},
		TopWords:       300,
		Alpha:          3,
		K:              5,
		KNNQueries:     300,
		SentimentTasks: []string{"sst2", "mr", "subj", "mpqa"},
		NEREnabled:     true,
		NERDims:        []int{8, 32, 128},
		NERPrecisions:  []int{1, 4, 32},
		NERSeeds:       []int64{1},
		KGEGraph:       kge.DefaultGraphConfig(),
		KGEDims:        []int{4, 8, 16, 32, 64},
		KGEPrecisions:  []int{1, 2, 4, 8, 32},
		KGESeeds:       []int64{1, 2},
		BERTHiddens:    []int{8, 16, 32},
		BERTPrecisions: []int{1, 2, 4, 8, 32},
		BERTSeeds:      []int64{1},
	}
}

// ReproConfig is the full-scale configuration (all algorithms, the whole
// 6x6 grid, 3 seeds), the closest analogue of the paper's sweep. Expect a
// long run; use `go run ./cmd/experiments -config repro`.
func ReproConfig() Config {
	cfg := BenchConfig()
	cfg.Corpus = corpus.DefaultConfig()
	cfg.Dims = []int{8, 16, 32, 64, 128, 256}
	cfg.Precisions = []int{1, 2, 4, 8, 16, 32}
	cfg.Seeds = []int64{1, 2, 3}
	cfg.TopWords = 400
	cfg.KNNQueries = 400
	cfg.NERDims = []int{8, 32, 128}
	cfg.NERPrecisions = []int{1, 4, 32}
	cfg.NERSeeds = []int64{1, 2}
	cfg.BERTHiddens = []int{8, 16, 32, 64}
	cfg.BERTSeeds = []int64{1, 2}
	return cfg
}

// midDim returns the middle of the dimension ladder, the paper's choice
// for precision-only sweeps (dimension 100 of {25..800}).
func (c Config) midDim() int { return c.Dims[(len(c.Dims)-1)/2] }

// maxDim returns the top of the ladder (anchor embeddings for EIS).
func (c Config) maxDim() int { return c.Dims[len(c.Dims)-1] }
