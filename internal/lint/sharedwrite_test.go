package lint_test

import (
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

// TestSharedWrite runs the sharedwrite fixtures: map stores, appends, and
// captured-index element writes from goroutines must be flagged; writes
// partitioned through closure parameters must pass.
func TestSharedWrite(t *testing.T) {
	linttest.Run(t, lint.SharedWrite, "testdata/src/sharedwrite", "anchorlint.test/sharedwrite")
}
