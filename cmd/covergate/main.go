// Command covergate enforces statement-coverage floors from a Go cover
// profile, so `make cover` (and CI) fail when coverage regresses instead
// of silently eroding.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	covergate -profile cover.out -baseline coverage-baseline.json
//
// The baseline maps package import paths to minimum covered-statement
// percentages, plus a "total" floor over every profiled statement. A
// package listed in the baseline but absent from the profile fails the
// run — a floor must never turn into a no-op because its tests stopped
// compiling or the package was renamed. Ratchet floors up by editing the
// baseline; they are floors, not targets, so routine runs above them
// need no edits.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the JSON gate document.
type Baseline struct {
	// Total is the minimum covered-statement percentage across the whole
	// profile (0 disables the module-wide floor).
	Total float64 `json:"total"`
	// Packages maps an import path to its own minimum percentage.
	Packages map[string]float64 `json:"packages"`
}

// pkgCover accumulates statement counts for one package.
type pkgCover struct{ covered, total int }

func (c pkgCover) percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

func main() {
	profile := flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
	baseline := flag.String("baseline", "coverage-baseline.json", "JSON file of coverage floors")
	flag.Parse()

	base, err := readBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	perPkg, err := readProfile(*profile)
	if err != nil {
		fatal(err)
	}

	var all pkgCover
	names := make([]string, 0, len(perPkg))
	for name, c := range perPkg {
		names = append(names, name)
		all.covered += c.covered
		all.total += c.total
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		c := perPkg[name]
		line := fmt.Sprintf("%-40s %6.1f%%", name, c.percent())
		if floor, ok := base.Packages[name]; ok {
			line += fmt.Sprintf("  (floor %.1f%%)", floor)
			if c.percent() < floor {
				line += "  FAIL"
				failed = true
			}
		}
		fmt.Println(line)
	}
	floored := make([]string, 0, len(base.Packages))
	for name := range base.Packages {
		floored = append(floored, name)
	}
	sort.Strings(floored)
	for _, name := range floored {
		if _, ok := perPkg[name]; !ok {
			fmt.Printf("%-40s absent from profile  FAIL\n", name)
			failed = true
		}
	}
	fmt.Printf("%-40s %6.1f%%  (floor %.1f%%)\n", "total", all.percent(), base.Total)
	if base.Total > 0 && all.percent() < base.Total {
		failed = true
	}
	if failed {
		fatal(fmt.Errorf("coverage below baseline %s", *baseline))
	}
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// readProfile aggregates a cover profile's statement counts per package
// (the directory of each block's file path). Blocks that appear more than
// once — as they do under -coverpkg when several test binaries exercise
// the same package — count once, covered if any run covered them.
func readProfile(name string) (map[string]pkgCover, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type block struct {
		file, pos string
		stmts     int
	}
	covered := make(map[block]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:12.2,15.16 numStmt count
		file, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%s: malformed line %q", name, line)
		}
		fields := strings.Fields(rest)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s: malformed line %q", name, line)
		}
		stmts, err1 := strconv.Atoi(fields[1])
		count, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s: malformed line %q", name, line)
		}
		b := block{file: file, pos: fields[0], stmts: stmts}
		covered[b] = covered[b] || count > 0
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	perPkg := make(map[string]pkgCover)
	for b, hit := range covered {
		c := perPkg[path.Dir(b.file)]
		c.total += b.stmts
		if hit {
			c.covered += b.stmts
		}
		perPkg[path.Dir(b.file)] = c
	}
	return perPkg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "covergate:", err)
	os.Exit(1)
}
