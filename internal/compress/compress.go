// Package compress implements the uniform quantization scheme the paper
// uses to control embedding precision (Section 2.3, Appendix C.2, after
// May et al. 2019's "smallfry"). Each entry is clipped to [-c, c] and
// rounded deterministically to one of 2^b equally spaced values, so it can
// be stored with b bits. Two stability-relevant details from the paper are
// preserved:
//
//   - the clipping threshold c is chosen by minimizing quantization MSE on
//     the FIRST embedding of a pair and reused for the second, avoiding a
//     spurious source of instability;
//   - rounding is deterministic (round-to-nearest), not stochastic.
package compress

import (
	"math"

	"anchor/internal/embedding"
	"anchor/internal/floats"
)

// FullPrecision is the number of bits that means "no compression".
const FullPrecision = 32

// OptimalClip returns the clipping threshold that minimizes the mean
// squared quantization error of uniform b-bit quantization on data,
// searched over a grid of quantiles of |data|.
func OptimalClip(data []float64, bits int) float64 {
	abs := make([]float64, len(data))
	for i, v := range data {
		abs[i] = math.Abs(v)
	}
	maxAbs := floats.Max(abs)
	if maxAbs == 0 {
		return 1
	}
	bestClip, bestMSE := maxAbs, math.Inf(1)
	for _, q := range []float64{0.5, 0.75, 0.9, 0.95, 0.99, 0.995, 0.999, 1.0} {
		clip := floats.Quantile(abs, q)
		if clip <= 0 {
			continue
		}
		mse := quantMSE(data, clip, bits)
		if mse < bestMSE {
			bestMSE, bestClip = mse, clip
		}
	}
	return bestClip
}

func quantMSE(data []float64, clip float64, bits int) float64 {
	var mse float64
	for _, v := range data {
		q := quantizeValue(v, clip, bits)
		d := v - q
		mse += d * d
	}
	return mse / float64(len(data))
}

// quantizeValue rounds v to the nearest of 2^bits equally spaced values in
// [-clip, clip].
func quantizeValue(v, clip float64, bits int) float64 {
	levels := float64(int64(1) << uint(bits)) // 2^b
	if v > clip {
		v = clip
	} else if v < -clip {
		v = -clip
	}
	// Map [-clip, clip] onto [0, levels-1], round, map back.
	// For 1 bit (two levels) this degenerates to sign quantization at ±clip.
	step := 2 * clip / (levels - 1)
	idx := math.Round((v + clip) / step)
	if idx < 0 {
		idx = 0
	}
	max := levels - 1
	if idx > max {
		idx = max
	}
	return idx*step - clip
}

// QuantizeValues quantizes data in place to the given number of bits with
// the given clip; bits >= 32 leaves the data unchanged. It is the raw
// primitive behind Quantize, exported for non-word-embedding matrices
// (knowledge graph embeddings, BERT features).
func QuantizeValues(data []float64, bits int, clip float64) {
	if bits >= FullPrecision {
		return
	}
	if bits < 1 {
		panic("compress: bits must be >= 1")
	}
	for i, v := range data {
		data[i] = quantizeValue(v, clip, bits)
	}
}

// Quantize returns a copy of e uniformly quantized to the given number of
// bits using clip as the clipping threshold. bits == 32 returns an
// unmodified copy (full precision). The returned embedding records the
// precision in its Meta.
func Quantize(e *embedding.Embedding, bits int, clip float64) *embedding.Embedding {
	out := e.Clone()
	out.Meta.Precision = bits
	if bits >= FullPrecision {
		out.Meta.Precision = FullPrecision
		return out
	}
	if bits < 1 {
		panic("compress: bits must be >= 1")
	}
	for i, v := range out.Vectors.Data {
		out.Vectors.Data[i] = quantizeValue(v, clip, bits)
	}
	return out
}

// QuantizePair compresses a Wiki'17/Wiki'18 embedding pair to the given
// precision, computing the MSE-optimal clip on x and sharing it with
// xTilde exactly as the paper prescribes.
func QuantizePair(x, xTilde *embedding.Embedding, bits int) (*embedding.Embedding, *embedding.Embedding) {
	if bits >= FullPrecision {
		qx, qy := x.Clone(), xTilde.Clone()
		qx.Meta.Precision, qy.Meta.Precision = FullPrecision, FullPrecision
		return qx, qy
	}
	clip := OptimalClip(x.Vectors.Data, bits)
	return Quantize(x, bits, clip), Quantize(xTilde, bits, clip)
}

// Levels returns the set of representable values for the given clip and
// bit width, useful for tests and documentation.
func Levels(clip float64, bits int) []float64 {
	n := int64(1) << uint(bits)
	step := 2 * clip / float64(n-1)
	out := make([]float64, n)
	for i := int64(0); i < n; i++ {
		out[i] = float64(i)*step - clip
	}
	return out
}
