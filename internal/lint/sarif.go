package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 document model — the subset anchorlint emits, shaped for
// GitHub code scanning: one run, a populated rule catalogue, and one
// result per diagnostic with in-source/external suppressions preserved.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string      `json:"id"`
	ShortDescription     sarifText   `json:"shortDescription"`
	DefaultConfiguration sarifConfig `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// SARIF renders the diagnostics as a SARIF 2.1.0 log. severityOf
// resolves each rule's effective severity (SeverityOf plus any driver
// overrides); file URIs are emitted relative to the working directory so
// code-scanning annotations land on repository paths.
func SARIF(diags []Diagnostic, severityOf func(rule string) string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(All())+1)
	for _, a := range All() {
		rules = append(rules, sarifRule{
			ID:                   a.Name,
			ShortDescription:     sarifText{Text: a.Doc},
			DefaultConfiguration: sarifConfig{Level: severityToLevel(severityOf(a.Name))},
		})
	}
	rules = append(rules, sarifRule{
		ID:                   "anchorlint",
		ShortDescription:     sarifText{Text: "directive hygiene: malformed, unknown-rule, or stale //anchorlint:ignore comments"},
		DefaultConfiguration: sarifConfig{Level: severityToLevel(severityOf("anchorlint"))},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Rule,
			Level:   severityToLevel(severityOf(d.Rule)),
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: RelPath(d.Pos.Filename), URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		}
		if d.Suppressed {
			kind := "inSource"
			if d.Baselined {
				kind = "external"
			}
			r.Suppressions = []sarifSuppression{{Kind: kind, Justification: d.SuppressReason}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "anchorlint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

// severityToLevel maps an analyzer severity to the SARIF result level.
func severityToLevel(severity string) string {
	switch severity {
	case "warning":
		return "warning"
	case "note":
		return "note"
	default:
		return "error"
	}
}

// RelPath returns the path relative to the working directory in slash
// form when it lies beneath it, else the path unchanged (slashed). Both
// SARIF URIs and baseline entries use this normalization so they are
// machine-independent.
func RelPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return filepath.ToSlash(path)
	}
	if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}
