package nn

import (
	"math"
	"math/rand"
	"testing"

	"anchor/internal/autodiff"
	"anchor/internal/matrix"
)

// gradCheckModule verifies module gradients against finite differences.
func gradCheckModule(t *testing.T, name string, params []*autodiff.Param, buildLoss func(tp *autodiff.Tape) *autodiff.Node) {
	t.Helper()
	tp := autodiff.NewTape()
	tp.Backward(buildLoss(tp))
	const eps = 1e-6
	for _, p := range params {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := buildLoss(autodiff.NewTape()).Value.At(0, 0)
			p.Value.Data[i] = orig - eps
			lm := buildLoss(autodiff.NewTape()).Value.At(0, 0)
			p.Value.Data[i] = orig
			want := (lp - lm) / (2 * eps)
			if got := p.Grad.Data[i]; math.Abs(got-want) > 2e-4*(1+math.Abs(want)) {
				t.Fatalf("%s: %s[%d]: grad %v vs fd %v", name, p.Name, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func TestLinearGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lin := NewLinear("lin", 4, 3, rng)
	x := matrix.NewDenseRand(5, 4, 1, rng)
	targets := []int{0, 1, 2, 0, 1}
	gradCheckModule(t, "linear", lin.Params(), func(tp *autodiff.Tape) *autodiff.Node {
		return tp.CrossEntropy(lin.Forward(tp, tp.Const(x)), targets)
	})
}

func TestLSTMGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lstm := NewLSTM("lstm", 3, 4, rng)
	seq := matrix.NewDenseRand(5, 3, 1, rng)
	gradCheckModule(t, "lstm", lstm.Params(), func(tp *autodiff.Tape) *autodiff.Node {
		h := lstm.Run(tp, tp.Const(seq))
		return tp.SumAll(tp.Mul(h, h))
	})
}

func TestBiLSTMGradAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bi := NewBiLSTM("bi", 3, 2, rng)
	seq := matrix.NewDenseRand(4, 3, 1, rng)
	tp := autodiff.NewTape()
	out := bi.Forward(tp, tp.Const(seq))
	if out.Value.Rows != 4 || out.Value.Cols != 4 {
		t.Fatalf("BiLSTM output %dx%d, want 4x4", out.Value.Rows, out.Value.Cols)
	}
	gradCheckModule(t, "bilstm", bi.Params(), func(tp *autodiff.Tape) *autodiff.Node {
		h := bi.Forward(tp, tp.Const(seq))
		return tp.SumAll(tp.Mul(h, h))
	})
}

func TestBiLSTMBackwardDirectionMatters(t *testing.T) {
	// The backward LSTM state at position 0 must depend on later tokens.
	rng := rand.New(rand.NewSource(4))
	bi := NewBiLSTM("bi", 2, 3, rng)
	seq1 := matrix.NewDenseRand(4, 2, 1, rng)
	seq2 := seq1.Clone()
	seq2.Set(3, 0, seq2.At(3, 0)+1) // change the LAST token

	out1 := bi.Forward(autodiff.NewTape(), autodiff.NewTape().Const(seq1))
	_ = out1
	tp1 := autodiff.NewTape()
	o1 := bi.Forward(tp1, tp1.Const(seq1))
	tp2 := autodiff.NewTape()
	o2 := bi.Forward(tp2, tp2.Const(seq2))
	// Forward half at position 0 must be identical; backward half must differ.
	for j := 0; j < 3; j++ {
		if o1.Value.At(0, j) != o2.Value.At(0, j) {
			t.Fatal("forward state at position 0 changed by a later token")
		}
	}
	differs := false
	for j := 3; j < 6; j++ {
		if o1.Value.At(0, j) != o2.Value.At(0, j) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("backward state at position 0 ignored a later token")
	}
}

func TestConv1DGradAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv1D("conv", []int{2, 3}, 3, 4, rng)
	seq := matrix.NewDenseRand(6, 3, 1, rng)
	tp := autodiff.NewTape()
	out := conv.Forward(tp, tp.Const(seq))
	if out.Value.Rows != 1 || out.Value.Cols != 8 {
		t.Fatalf("conv output %dx%d, want 1x8", out.Value.Rows, out.Value.Cols)
	}
	gradCheckModule(t, "conv", conv.Params(), func(tp *autodiff.Tape) *autodiff.Node {
		o := conv.Forward(tp, tp.Const(seq))
		return tp.SumAll(tp.Mul(o, o))
	})
}

func TestConv1DShortSequence(t *testing.T) {
	// Sequence shorter than the largest filter width must still work.
	rng := rand.New(rand.NewSource(6))
	conv := NewConv1D("conv", []int{3, 5}, 2, 3, rng)
	seq := matrix.NewDenseRand(2, 2, 1, rng)
	tp := autodiff.NewTape()
	out := conv.Forward(tp, tp.Const(seq))
	if out.Value.Cols != 6 {
		t.Fatalf("short sequence conv output cols = %d", out.Value.Cols)
	}
}

func TestCRFForwardMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	crf := NewCRF("crf", 3, rng)
	emissions := matrix.NewDenseRand(4, 3, 1, rng)
	tags := []int{0, 2, 1, 1}

	tp := autodiff.NewTape()
	nll := crf.NegLogLikelihood(tp, tp.Const(emissions), tags)

	// Brute force: logZ − goldScore.
	logZ := crf.BruteForceLogZ(emissions)
	gold := crf.Start.Value.At(0, tags[0]) + emissions.At(0, tags[0])
	for t2 := 1; t2 < 4; t2++ {
		gold += crf.Trans.Value.At(tags[t2-1], tags[t2]) + emissions.At(t2, tags[t2])
	}
	gold += crf.End.Value.At(0, tags[3])
	want := logZ - gold
	if math.Abs(nll.Value.At(0, 0)-want) > 1e-9 {
		t.Fatalf("CRF NLL %v != brute force %v", nll.Value.At(0, 0), want)
	}
}

func TestCRFGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	crf := NewCRF("crf", 3, rng)
	emissions := matrix.NewDenseRand(4, 3, 1, rng)
	tags := []int{1, 0, 2, 1}
	gradCheckModule(t, "crf", crf.Params(), func(tp *autodiff.Tape) *autodiff.Node {
		return crf.NegLogLikelihood(tp, tp.Const(emissions), tags)
	})
}

func TestCRFDecodeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	crf := NewCRF("crf", 3, rng)
	emissions := matrix.NewDenseRand(5, 3, 1, rng)
	got := crf.Decode(emissions)

	// Brute force best path.
	n := 5
	bestScore := math.Inf(-1)
	var best []int
	seq := make([]int, n)
	var rec func(t int, acc float64)
	rec = func(t int, acc float64) {
		if t == n {
			total := acc + crf.End.Value.At(0, seq[n-1])
			if total > bestScore {
				bestScore = total
				best = append([]int(nil), seq...)
			}
			return
		}
		for j := 0; j < 3; j++ {
			s := acc + emissions.At(t, j)
			if t == 0 {
				s += crf.Start.Value.At(0, j)
			} else {
				s += crf.Trans.Value.At(seq[t-1], j)
			}
			seq[t] = j
			rec(t+1, s)
		}
	}
	rec(0, 0)
	for i := range best {
		if got[i] != best[i] {
			t.Fatalf("Viterbi path %v != brute force %v", got, best)
		}
	}
}

func TestCRFLearnsTransitions(t *testing.T) {
	// Train a CRF on sequences that always alternate tags 0,1,0,1...
	// With uninformative emissions it must learn the transition structure.
	rng := rand.New(rand.NewSource(10))
	crf := NewCRF("crf", 2, rng)
	emissions := matrix.NewDense(6, 2) // all-zero emissions
	tags := []int{0, 1, 0, 1, 0, 1}
	opt := NewSGD(0.5)
	for it := 0; it < 60; it++ {
		tp := autodiff.NewTape()
		nll := crf.NegLogLikelihood(tp, tp.Const(emissions), tags)
		tp.Backward(nll)
		opt.Step(crf.Params())
	}
	got := crf.Decode(emissions)
	for i, tag := range tags {
		if got[i] != tag {
			t.Fatalf("CRF failed to learn alternation: %v", got)
		}
	}
}

func TestSGDStepAndZero(t *testing.T) {
	p := autodiff.NewParam("p", matrix.NewDenseData(1, 2, []float64{1, 2}))
	p.Grad.Data[0], p.Grad.Data[1] = 0.5, -1
	NewSGD(0.1).Step([]*autodiff.Param{p})
	if math.Abs(p.Value.Data[0]-0.95) > 1e-12 || math.Abs(p.Value.Data[1]-2.1) > 1e-12 {
		t.Fatalf("SGD step wrong: %v", p.Value.Data)
	}
	if p.Grad.Data[0] != 0 || p.Grad.Data[1] != 0 {
		t.Fatal("SGD did not zero gradients")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (x-3)^2 + (y+1)^2.
	p := autodiff.NewParam("p", matrix.NewDense(1, 2))
	opt := NewAdam(0.1)
	for it := 0; it < 500; it++ {
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
		p.Grad.Data[1] = 2 * (p.Value.Data[1] + 1)
		opt.Step([]*autodiff.Param{p})
	}
	if math.Abs(p.Value.Data[0]-3) > 1e-2 || math.Abs(p.Value.Data[1]+1) > 1e-2 {
		t.Fatalf("Adam did not converge: %v", p.Value.Data)
	}
}

func TestLinearTrainsXORWithHidden(t *testing.T) {
	// 2-layer MLP learns XOR: proves the full train loop works end to end.
	rng := rand.New(rand.NewSource(11))
	l1 := NewLinear("l1", 2, 8, rng)
	l2 := NewLinear("l2", 8, 2, rng)
	params := append(l1.Params(), l2.Params()...)
	x := matrix.NewDenseData(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	y := []int{0, 1, 1, 0}
	opt := NewAdam(0.05)
	for it := 0; it < 400; it++ {
		tp := autodiff.NewTape()
		h := tp.Tanh(l1.Forward(tp, tp.Const(x)))
		logits := l2.Forward(tp, h)
		loss := tp.CrossEntropy(logits, y)
		tp.Backward(loss)
		opt.Step(params)
	}
	tp := autodiff.NewTape()
	logits := l2.Forward(tp, tp.Tanh(l1.Forward(tp, tp.Const(x)))).Value
	for i, want := range y {
		pred := 0
		if logits.At(i, 1) > logits.At(i, 0) {
			pred = 1
		}
		if pred != want {
			t.Fatalf("XOR example %d misclassified", i)
		}
	}
}

func sameDense(t *testing.T, name string, a, b *matrix.Dense) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: element %d: %v != %v", name, i, a.Data[i], b.Data[i])
		}
	}
}

// TestForwardSeqFusedBitwiseEqualsReference drives the lockstep BiLSTM
// down both paths — fused ops on an arena tape vs the retained generic
// composition on a classic tape — and requires bitwise-identical hidden
// states and parameter gradients.
func TestForwardSeqFusedBitwiseEqualsReference(t *testing.T) {
	const in, hid, batch, steps = 5, 4, 3, 6
	rng := rand.New(rand.NewSource(21))
	bi := NewBiLSTM("bi", in, hid, rng)
	xs := make([]*matrix.Dense, steps)
	for i := range xs {
		xs[i] = matrix.NewDenseRand(batch, in, 1, rng)
	}

	run := func(tp *autodiff.Tape, fused bool) (*matrix.Dense, []*matrix.Dense) {
		nodes := make([]*autodiff.Node, steps)
		for i, x := range xs {
			nodes[i] = tp.Const(x)
		}
		h := bi.ForwardSeq(tp, nodes, fused)
		tp.Backward(tp.SumAll(tp.Mul(h, h)))
		grads := make([]*matrix.Dense, 0, len(bi.Params()))
		for _, p := range bi.Params() {
			grads = append(grads, p.Grad.Clone())
			p.ZeroGrad()
		}
		return h.Value.Clone(), grads
	}

	atp := autodiff.NewArenaTape()
	vFast, gFast := run(atp, true)
	vRef, gRef := run(autodiff.NewTape(), false)
	sameDense(t, "hidden states", vFast, vRef)
	for i, p := range bi.Params() {
		sameDense(t, "grad "+p.Name, gFast[i], gRef[i])
	}

	// Each sentence's rows must also equal a per-sentence Forward pass.
	tp := autodiff.NewTape()
	for b := 0; b < batch; b++ {
		seq := matrix.NewDense(steps, in)
		for s := 0; s < steps; s++ {
			copy(seq.Row(s), xs[s].Row(b))
		}
		single := bi.Forward(tp, tp.Const(seq)).Value
		for s := 0; s < steps; s++ {
			for j := 0; j < 2*hid; j++ {
				if single.At(s, j) != vFast.At(s*batch+b, j) {
					t.Fatalf("sentence %d timestep %d col %d: batched %v != single %v",
						b, s, j, vFast.At(s*batch+b, j), single.At(s, j))
				}
			}
		}
	}
}

// TestConvForwardBatchFusedBitwiseEqualsReference checks the batched CNN
// feature extractor down both pooling paths, including the short-sequence
// zero-padding case.
func TestConvForwardBatchFusedBitwiseEqualsReference(t *testing.T) {
	for _, n := range []int{6, 2} { // 2 < max width exercises padding
		rng := rand.New(rand.NewSource(22))
		conv := NewConv1D("conv", []int{2, 3}, 3, 4, rng)
		const batch = 3
		toks := matrix.NewDenseRand(batch*n, 3, 1, rng)
		tok := func(b, t int) []float64 { return toks.Row(b*n + t) }

		run := func(tp *autodiff.Tape, fused bool) (*matrix.Dense, []*matrix.Dense) {
			f := conv.ForwardBatch(tp, tok, batch, n, fused)
			tp.Backward(tp.SumAll(tp.Mul(f, f)))
			grads := make([]*matrix.Dense, 0, len(conv.Params()))
			for _, p := range conv.Params() {
				grads = append(grads, p.Grad.Clone())
				p.ZeroGrad()
			}
			return f.Value.Clone(), grads
		}
		vFast, gFast := run(autodiff.NewArenaTape(), true)
		vRef, gRef := run(autodiff.NewTape(), false)
		sameDense(t, "features", vFast, vRef)
		for i, p := range conv.Params() {
			sameDense(t, "grad "+p.Name, gFast[i], gRef[i])
		}
	}
}

func TestLengthBatches(t *testing.T) {
	lengths := []int{3, 5, 3, 0, 5, 3, 5, 5, 3, 3}
	batches := LengthBatches(lengths, 2)
	want := [][]int{{0, 2}, {5, 8}, {9}, {1, 4}, {6, 7}}
	if len(batches) != len(want) {
		t.Fatalf("got %d batches, want %d: %v", len(batches), len(want), batches)
	}
	for i, b := range batches {
		if len(b) != len(want[i]) {
			t.Fatalf("batch %d = %v, want %v", i, b, want[i])
		}
		for j := range b {
			if b[j] != want[i][j] {
				t.Fatalf("batch %d = %v, want %v", i, b, want[i])
			}
		}
		n := lengths[b[0]]
		for _, idx := range b {
			if lengths[idx] != n {
				t.Fatalf("batch %d mixes lengths", i)
			}
		}
	}
}

func TestCRFNLLValueMatchesTape(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	crf := NewCRF("crf", 3, rng)
	emissions := matrix.NewDenseRand(5, 3, 1, rng)
	tags := []int{0, 2, 1, 1, 0}
	tp := autodiff.NewTape()
	want := crf.NegLogLikelihood(tp, tp.Const(emissions), tags).Value.At(0, 0)
	got := crf.NLLValue(emissions, tags)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("NLLValue %v != tape NLL %v", got, want)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := matrix.NewDense(10, 10)
	XavierInit(m, 10, 10, rng)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("init value %v outside ±%v", v, limit)
		}
	}
}
