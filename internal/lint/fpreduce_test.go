package lint_test

import (
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

// TestFPReduce runs the fpreduce fixtures: mutex-guarded float sums in
// goroutines, .Go-launched closures, and channel-receive folds must be
// flagged; shard-private accumulation folded in fixed order and integer
// counters must pass.
func TestFPReduce(t *testing.T) {
	linttest.Run(t, lint.FPReduce, "testdata/src/fpreduce", "anchorlint.test/fpreduce")
}
