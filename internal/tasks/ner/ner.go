// Package ner implements the paper's named entity recognition downstream
// task: a synthetic CoNLL-2003 analogue (gazetteer + template generation
// over the shared corpus vocabulary) and the BiLSTM / BiLSTM-CRF taggers
// (after Akbik et al. 2018) trained on top of fixed word embeddings.
//
// As in the paper, instability and quality are measured only over tokens
// whose gold label is an entity (PER, ORG, LOC, MISC), not O.
package ner

import (
	"math"
	"math/rand"

	"anchor/internal/autodiff"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/matrix"
	"anchor/internal/nn"
)

// Tag values. O must be zero.
const (
	TagO = iota
	TagPER
	TagORG
	TagLOC
	TagMISC
	NumTags
)

// TagNames lists the human-readable tag names indexed by tag value.
var TagNames = [NumTags]string{"O", "PER", "ORG", "LOC", "MISC"}

// Example is one labeled sentence.
type Example struct {
	Tokens []int32
	Tags   []int
}

// Dataset is a train/validation/test split.
type Dataset struct {
	Name             string
	Train, Val, Test []Example
}

// Params controls dataset generation.
type Params struct {
	Name           string
	TrainN, ValN   int
	TestN          int
	LenMin, LenMax int
	// GazetteerSize is the number of distinct entities per type.
	GazetteerSize int
	// MentionRate is the expected number of entity mentions per sentence.
	MentionRate float64
	Seed        int64
}

// CoNLLParams returns the CoNLL-2003 analogue configuration.
func CoNLLParams() Params {
	return Params{
		Name: "conll2003", TrainN: 220, ValN: 60, TestN: 120,
		LenMin: 6, LenMax: 14, GazetteerSize: 30, MentionRate: 2.2, Seed: 5005,
	}
}

// Generate builds the dataset. Each entity type's gazetteer is drawn from
// two dedicated topics of the corpus, so entity identity is recoverable
// from embedding geometry; entities are 1–2 token sequences.
func Generate(c *corpus.Corpus, ccfg corpus.Config, p Params) *Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	top := c.TopWords(ccfg.VocabSize)

	// Filler (O) words are the most frequent words; gazetteer entities are
	// drawn strictly from the mid-frequency band below them so a word is
	// never both filler and entity (in CoNLL, names and function words are
	// likewise near-disjoint).
	const fillerCut = 60

	// Partition candidate words by topic group: type k draws from topics
	// {2k, 2k+1} mod NumTopics.
	byType := make([][]int32, 4)
	for _, w := range top[fillerCut:] {
		topic := corpus.PrimaryTopic(ccfg, w, corpus.Wiki17)
		ty := (topic / 2) % 4
		if len(byType[ty]) < 3*p.GazetteerSize {
			byType[ty] = append(byType[ty], int32(w))
		}
	}
	// Build gazetteers: each entity is 1 or 2 tokens from its type pool.
	gaz := make([][][]int32, 4)
	for ty := 0; ty < 4; ty++ {
		pool := byType[ty]
		if len(pool) < 4 {
			panic("ner: not enough candidate words for gazetteer")
		}
		for e := 0; e < p.GazetteerSize; e++ {
			n := 1 + rng.Intn(2)
			ent := make([]int32, n)
			for j := range ent {
				ent[j] = pool[rng.Intn(len(pool))]
			}
			gaz[ty] = append(gaz[ty], ent)
		}
	}

	filler := top[:fillerCut]
	gen := func(n int) []Example {
		out := make([]Example, n)
		for i := range out {
			length := p.LenMin + rng.Intn(p.LenMax-p.LenMin+1)
			toks := make([]int32, 0, length+4)
			tags := make([]int, 0, length+4)
			mentions := 0
			for len(toks) < length {
				if float64(mentions) < p.MentionRate && rng.Float64() < p.MentionRate/float64(length) {
					ty := rng.Intn(4)
					ent := gaz[ty][rng.Intn(len(gaz[ty]))]
					for _, w := range ent {
						toks = append(toks, w)
						tags = append(tags, ty+1) // TagPER..TagMISC
					}
					mentions++
				} else {
					toks = append(toks, int32(filler[rng.Intn(len(filler))]))
					tags = append(tags, TagO)
				}
			}
			out[i] = Example{Tokens: toks, Tags: tags}
		}
		return out
	}
	return &Dataset{Name: p.Name, Train: gen(p.TrainN), Val: gen(p.ValN), Test: gen(p.TestN)}
}

// Config configures the BiLSTM tagger. UseCRF switches to the BiLSTM-CRF
// variant of Appendix E.2.
type Config struct {
	Hidden int
	LR     float64
	Epochs int
	// Batch is the lockstep minibatch size: sentences of the same length
	// are stacked and stepped through the BiLSTM together, so one tape
	// serves Batch sentences (<= 0 selects 1). Bucketing and batch order
	// are deterministic; results are bitwise identical for every worker
	// count.
	Batch  int
	UseCRF bool
	// Patience and AnnealFactor implement the paper's anneal-on-plateau
	// schedule (Appendix C.3.2): if validation loss fails to improve for
	// Patience epochs, the learning rate is multiplied by AnnealFactor.
	Patience     int
	AnnealFactor float64
	Seed         int64
}

// DefaultConfig mirrors the paper's NER training setup scaled down. The
// learning rate is tuned for the lockstep minibatch trainer (a batch of 8
// averages 8 sentence gradients per step, so it supports — and needs — a
// larger step size than the old per-sentence loop to reach the same
// quality in the same number of epochs).
func DefaultConfig(seed int64) Config {
	return Config{Hidden: 10, LR: 1.6, Epochs: 10, Batch: 8, Patience: 2, AnnealFactor: 0.5, Seed: seed}
}

// Tagger is a trained BiLSTM (optionally +CRF) NER model over fixed
// embeddings.
type Tagger struct {
	emb *embedding.Embedding
	bi  *nn.BiLSTM
	out *nn.Linear
	crf *nn.CRF // nil without CRF
}

// inferBatch is the lockstep batch size used for gradient-free passes
// (validation loss, prediction). Emission values are independent of how
// sentences are batched, so this is a pure throughput knob.
const inferBatch = 32

// Train fits the tagger on ds.Train with the fixed embedding, using the
// fast path: one arena-backed tape reused across minibatches, fused LSTM
// ops, and lockstep length-bucketed batches.
func Train(emb *embedding.Embedding, ds *Dataset, cfg Config) *Tagger {
	return train(emb, ds, cfg, true)
}

// TrainReference trains the same model over the same batch schedule on
// the retained slow path — a fresh heap-allocating tape per minibatch and
// the unfused op compositions. It produces bitwise-identical weights and
// predictions to Train and is kept for equality tests and benchmarks.
func TrainReference(emb *embedding.Embedding, ds *Dataset, cfg Config) *Tagger {
	return train(emb, ds, cfg, false)
}

func train(emb *embedding.Embedding, ds *Dataset, cfg Config, fast bool) *Tagger {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Tagger{
		emb: emb,
		bi:  nn.NewBiLSTM("bi", emb.Dim(), cfg.Hidden, rng),
		out: nn.NewLinear("out", 2*cfg.Hidden, NumTags, rng),
	}
	if cfg.UseCRF {
		m.crf = nn.NewCRF("crf", NumTags, rng)
	}
	params := append(m.bi.Params(), m.out.Params()...)
	if m.crf != nil {
		params = append(params, m.crf.Params()...)
	}
	opt := nn.NewSGD(cfg.LR)

	lengths := make([]int, len(ds.Train))
	for i, ex := range ds.Train {
		lengths[i] = len(ex.Tokens)
	}
	batches := nn.LengthBatches(lengths, cfg.Batch)
	order := make([]int, len(batches))
	for i := range order {
		order[i] = i
	}

	var tp *autodiff.Tape
	if fast {
		tp = autodiff.NewArenaTape()
		tp.Workers = 1
	}
	bestVal := 1e30
	sincePlateau := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, bi := range order {
			batch := batches[bi]
			if fast {
				tp.Reset()
			} else {
				tp = autodiff.NewTape()
				tp.Workers = 1
			}
			loss := m.batchLoss(tp, ds.Train, batch, fast)
			tp.Backward(loss)
			opt.Step(params)
		}
		// Anneal on validation plateau. The final epoch's validation pass
		// is skipped: no further training step can observe its outcome.
		if epoch == cfg.Epochs-1 {
			break
		}
		val := m.valLoss(ds.Val, fast)
		if val < bestVal-1e-4 {
			bestVal = val
			sincePlateau = 0
		} else {
			sincePlateau++
			if sincePlateau >= cfg.Patience {
				opt.LR *= cfg.AnnealFactor
				sincePlateau = 0
			}
		}
	}
	return m
}

// TrainPerSentence is the seed's original training loop, retained for
// benchmarking what lockstep batching replaced: one fresh tape, one
// forward/backward, and one SGD step per sentence per epoch, with the
// per-sentence validation pass. Because it updates parameters at a
// different granularity than the lockstep trainers, its trained weights
// necessarily differ from Train/TrainReference (batching changes the
// optimization trajectory, not just the arithmetic order).
func TrainPerSentence(emb *embedding.Embedding, ds *Dataset, cfg Config) *Tagger {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Tagger{
		emb: emb,
		bi:  nn.NewBiLSTM("bi", emb.Dim(), cfg.Hidden, rng),
		out: nn.NewLinear("out", 2*cfg.Hidden, NumTags, rng),
	}
	if cfg.UseCRF {
		m.crf = nn.NewCRF("crf", NumTags, rng)
	}
	params := append(m.bi.Params(), m.out.Params()...)
	if m.crf != nil {
		params = append(params, m.crf.Params()...)
	}
	opt := nn.NewSGD(cfg.LR)

	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	bestVal := 1e30
	sincePlateau := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			ex := ds.Train[i]
			if len(ex.Tokens) == 0 {
				continue
			}
			tp := autodiff.NewTape()
			tp.Workers = 1
			emissions := m.emissions(tp, ex.Tokens)
			var loss *autodiff.Node
			if m.crf != nil {
				loss = m.crf.NegLogLikelihood(tp, emissions, ex.Tags)
			} else {
				loss = tp.CrossEntropy(emissions, ex.Tags)
			}
			tp.Backward(loss)
			opt.Step(params)
		}
		if epoch == cfg.Epochs-1 {
			break
		}
		var total float64
		n := 0
		for _, ex := range ds.Val {
			if len(ex.Tokens) == 0 {
				continue
			}
			tp := autodiff.NewTape()
			tp.Workers = 1
			emissions := m.emissions(tp, ex.Tokens)
			if m.crf != nil {
				total += m.crf.NegLogLikelihood(tp, emissions, ex.Tags).Value.At(0, 0)
			} else {
				total += tp.CrossEntropy(emissions, ex.Tags).Value.At(0, 0)
			}
			n++
		}
		val := 0.0
		if n > 0 {
			val = total / float64(n)
		}
		if val < bestVal-1e-4 {
			bestVal = val
			sincePlateau = 0
		} else {
			sincePlateau++
			if sincePlateau >= cfg.Patience {
				opt.LR *= cfg.AnnealFactor
				sincePlateau = 0
			}
		}
	}
	return m
}

// batchLoss records the loss of one length-bucketed minibatch: stacked
// emissions, then the mean per-token loss — token cross-entropy for the
// BiLSTM, or the summed per-sentence CRF negative log-likelihoods scaled
// by 1/(B·T) so both variants share the cross-entropy's gradient scale
// (and thus the same learning rate).
func (m *Tagger) batchLoss(tp *autodiff.Tape, examples []Example, batch []int, fused bool) *autodiff.Node {
	emissions := m.emissionsBatch(tp, examples, batch, fused)
	b := len(batch)
	n := len(examples[batch[0]].Tokens)
	if m.crf != nil {
		var sum *autodiff.Node
		for bi, i := range batch {
			idx := make([]int, n)
			for t := range idx {
				idx[t] = t*b + bi
			}
			nll := m.crf.NegLogLikelihood(tp, tp.GatherRows(emissions, idx), examples[i].Tags)
			if sum == nil {
				sum = nll
			} else {
				sum = tp.Add(sum, nll)
			}
		}
		return tp.Scale(sum, 1/float64(b*n))
	}
	targets := make([]int, n*b)
	for bi, i := range batch {
		for t, tag := range examples[i].Tags {
			targets[t*b+bi] = tag
		}
	}
	return tp.CrossEntropy(emissions, targets)
}

// emissionsBatch returns the stacked (T*B)-by-NumTags emission scores of a
// length-bucketed minibatch; row t*B+b is sentence batch[b] at timestep t.
func (m *Tagger) emissionsBatch(tp *autodiff.Tape, examples []Example, batch []int, fused bool) *autodiff.Node {
	n := len(examples[batch[0]].Tokens)
	xs := make([]*autodiff.Node, n)
	ids := make([]int32, len(batch))
	for t := 0; t < n; t++ {
		for bi, i := range batch {
			ids[bi] = examples[i].Tokens[t]
		}
		xs[t] = tp.LookupRows(m.emb.Vectors, ids)
	}
	return m.out.Forward(tp, m.bi.ForwardSeq(tp, xs, fused))
}

func (m *Tagger) emissions(tp *autodiff.Tape, tokens []int32) *autodiff.Node {
	seq := matrix.NewDense(len(tokens), m.emb.Dim())
	for i, tk := range tokens {
		copy(seq.Row(i), m.emb.Vector(int(tk)))
	}
	h := m.bi.Forward(tp, tp.Const(seq))
	return m.out.Forward(tp, h)
}

// valLoss scores the validation split in lockstep batches, down the fast
// or the retained slow emission path. Emission values are bitwise
// independent of fusion, so the two trainers' anneal-on-plateau decisions
// — and thus their trained weights — are identical. The value is the mean
// of the per-sentence losses, summed in original example order.
func (m *Tagger) valLoss(val []Example, fast bool) float64 {
	lengths := make([]int, len(val))
	for i, ex := range val {
		lengths[i] = len(ex.Tokens)
	}
	losses := make([]float64, len(val))
	used := make([]bool, len(val))
	var tp *autodiff.Tape
	if fast {
		tp = autodiff.NewArenaTape()
		tp.Workers = 1
	}
	probs := make([]float64, NumTags)
	for _, batch := range nn.LengthBatches(lengths, inferBatch) {
		if fast {
			tp.Reset()
		} else {
			tp = autodiff.NewTape()
			tp.Workers = 1
		}
		em := m.emissionsBatch(tp, val, batch, fast).Value
		b := len(batch)
		n := len(val[batch[0]].Tokens)
		for bi, i := range batch {
			if m.crf != nil {
				sent := matrix.NewDense(n, NumTags)
				for t := 0; t < n; t++ {
					copy(sent.Row(t), em.Row(t*b+bi))
				}
				losses[i] = m.crf.NLLValue(sent, val[i].Tags)
			} else {
				var loss float64
				for t, tag := range val[i].Tags {
					floats.Softmax(probs, em.Row(t*b+bi))
					p := probs[tag]
					if p < 1e-12 {
						p = 1e-12
					}
					loss -= math.Log(p)
				}
				losses[i] = loss / float64(n)
			}
			used[i] = true
		}
	}
	var total float64
	n := 0
	for i, ok := range used {
		if ok {
			total += losses[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Predict returns the predicted tag sequence for one sentence.
func (m *Tagger) Predict(tokens []int32) []int {
	if len(tokens) == 0 {
		return nil
	}
	tp := autodiff.NewTape()
	emissions := m.emissions(tp, tokens).Value
	return m.decodeEmissions(emissions)
}

func (m *Tagger) decodeEmissions(emissions *matrix.Dense) []int {
	if m.crf != nil {
		return m.crf.Decode(emissions)
	}
	out := make([]int, emissions.Rows)
	for i := 0; i < emissions.Rows; i++ {
		best := 0
		for j := 1; j < NumTags; j++ {
			if emissions.At(i, j) > emissions.At(i, best) {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// predictAll tags every example in lockstep batches; predictions are
// bitwise identical to per-sentence Predict calls.
func (m *Tagger) predictAll(examples []Example) [][]int {
	lengths := make([]int, len(examples))
	for i, ex := range examples {
		lengths[i] = len(ex.Tokens)
	}
	preds := make([][]int, len(examples))
	tp := autodiff.NewArenaTape()
	tp.Workers = 1
	for _, batch := range nn.LengthBatches(lengths, inferBatch) {
		tp.Reset()
		em := m.emissionsBatch(tp, examples, batch, true).Value
		b := len(batch)
		n := len(examples[batch[0]].Tokens)
		sent := matrix.NewDense(n, NumTags)
		for bi, i := range batch {
			for t := 0; t < n; t++ {
				copy(sent.Row(t), em.Row(t*b+bi))
			}
			preds[i] = m.decodeEmissions(sent)
		}
	}
	return preds
}

// EntityPredictions returns the model's predictions flattened over the
// tokens whose GOLD tag is an entity — the prediction set the paper
// measures NER instability on.
func (m *Tagger) EntityPredictions(examples []Example) []int {
	return entityPredictionsOf(m.predictAll(examples), examples)
}

// EntityTokenF1 returns the micro-averaged F1 over entity classes at the
// token level (precision/recall of entity-tagged tokens), the quality
// metric for the Figure 8 analogue.
func (m *Tagger) EntityTokenF1(examples []Example) float64 {
	return entityF1Of(m.predictAll(examples), examples)
}

// EvaluateEntities returns both the flattened gold-entity predictions and
// the entity token F1 from a single batched inference pass — what a grid
// cell needs, at half the inference cost of calling EntityPredictions and
// EntityTokenF1 separately.
func (m *Tagger) EvaluateEntities(examples []Example) ([]int, float64) {
	all := m.predictAll(examples)
	return entityPredictionsOf(all, examples), entityF1Of(all, examples)
}

func entityPredictionsOf(all [][]int, examples []Example) []int {
	var out []int
	for xi, ex := range examples {
		for i, gold := range ex.Tags {
			if gold != TagO {
				out = append(out, all[xi][i])
			}
		}
	}
	return out
}

func entityF1Of(all [][]int, examples []Example) float64 {
	var tp, fp, fn float64
	for xi, ex := range examples {
		preds := all[xi]
		for i, gold := range ex.Tags {
			pred := preds[i]
			switch {
			case gold != TagO && pred == gold:
				tp++
			case gold != TagO && pred != gold:
				fn++
				if pred != TagO {
					fp++
				}
			case gold == TagO && pred != TagO:
				fp++
			}
		}
	}
	if tp == 0 {
		return 0
	}
	prec := tp / (tp + fp)
	rec := tp / (tp + fn)
	return 2 * prec * rec / (prec + rec)
}
