package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matAlmostEqual(t *testing.T, a, b *Dense, tol float64) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if !almostEqual(a.Data[i], b.Data[i], tol) {
			t.Fatalf("entry %d: %v != %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestMulHandComputed(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	matAlmostEqual(t, got, want, 1e-12)
}

func TestMulATBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewDenseRand(7, 4, 1, rng)
	b := NewDenseRand(7, 3, 1, rng)
	matAlmostEqual(t, MulATB(a, b), Mul(a.T(), b), 1e-12)
}

func TestMulABTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewDenseRand(5, 6, 1, rng)
	b := NewDenseRand(4, 6, 1, rng)
	matAlmostEqual(t, MulABT(a, b), Mul(a, b.T()), 1e-12)
}

func TestMulVecAndT(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(m, []float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec got %v", got)
	}
	gotT := MulVecT(m, []float64{1, 2})
	want := []float64{9, 12, 15}
	for i := range want {
		if gotT[i] != want[i] {
			t.Fatalf("MulVecT got %v want %v", gotT, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := NewDenseRand(r, c, 2, rng)
		tt := m.T().T()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range [][2]int{{10, 4}, {4, 10}, {6, 6}, {30, 3}} {
		a := NewDenseRand(shape[0], shape[1], 1, rng)
		s := ComputeSVD(a)
		rec := s.Reconstruct()
		matAlmostEqual(t, rec, a, 1e-9)
	}
}

func TestSVDOrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewDenseRand(20, 5, 1, rng)
	s := ComputeSVD(a)
	utu := MulATB(s.U, s.U)
	vtv := MulATB(s.V, s.V)
	matAlmostEqual(t, utu, Identity(len(s.S)), 1e-10)
	matAlmostEqual(t, vtv, Identity(len(s.S)), 1e-10)
	for i := 1; i < len(s.S); i++ {
		if s.S[i] > s.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", s.S)
		}
	}
}

func TestSVDLowRank(t *testing.T) {
	// Build an explicitly rank-2 matrix; SVD should detect rank 2.
	rng := rand.New(rand.NewSource(5))
	u := NewDenseRand(12, 2, 1, rng)
	v := NewDenseRand(6, 2, 1, rng)
	a := MulABT(u, v)
	s := ComputeSVD(a)
	if len(s.S) != 2 {
		t.Fatalf("expected rank 2, got %d singular values %v", len(s.S), s.S)
	}
	matAlmostEqual(t, s.Reconstruct(), a, 1e-9)
}

func TestSVDPropertySingularValuesNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(10)
		c := 2 + rng.Intn(5)
		a := NewDenseRand(r, c, 3, rng)
		s := ComputeSVD(a)
		// Frobenius norm identity: ||A||_F² == Σ σᵢ².
		var sum float64
		for _, sv := range s.S {
			if sv < 0 {
				return false
			}
			sum += sv * sv
		}
		fn := a.FrobNorm()
		return almostEqual(sum, fn*fn, 1e-8*(1+fn*fn))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProcrustesRecoversRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	y := NewDenseRand(40, 5, 1, rng)
	// Build a random orthogonal matrix via SVD of a random square matrix.
	q := ComputeSVD(NewDenseRand(5, 5, 1, rng))
	rot := MulABT(q.U, q.V)
	x := Mul(y, rot)
	r := Procrustes(x, y)
	matAlmostEqual(t, r, rot, 1e-8)
	// R must be orthogonal.
	matAlmostEqual(t, MulATB(r, r), Identity(5), 1e-10)
}

func TestProcrustesReducesError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := NewDenseRand(30, 4, 1, rng)
	y := NewDenseRand(30, 4, 1, rng)
	r := Procrustes(x, y)
	before := x.Clone().Sub(y).FrobNorm()
	after := x.Clone().Sub(Mul(y, r)).FrobNorm()
	if after > before+1e-12 {
		t.Fatalf("procrustes increased error: before=%v after=%v", before, after)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := NewDenseRand(20, 4, 1, rng)
	wTrue := []float64{1, -2, 0.5, 3}
	b := MulVec(a, wTrue)
	w := LeastSquares(a, b)
	for i := range wTrue {
		if !almostEqual(w[i], wTrue[i], 1e-8) {
			t.Fatalf("w=%v want %v", w, wTrue)
		}
	}
}

func TestLeastSquaresResidualOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewDenseRand(25, 3, 1, rng)
	b := make([]float64, 25)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	w := LeastSquares(a, b)
	pred := MulVec(a, w)
	resid := make([]float64, len(b))
	for i := range b {
		resid[i] = b[i] - pred[i]
	}
	// Residual must be orthogonal to the column space: Aᵀr == 0.
	atr := MulVecT(a, resid)
	for _, v := range atr {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("residual not orthogonal: %v", atr)
		}
	}
}

func TestSolveSPDNotPositiveDefinitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-PD matrix")
		}
	}()
	m := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	SolveSPD(m, []float64{1, 1})
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	matAlmostEqual(t, id, d, 0)
}
