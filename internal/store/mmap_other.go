//go:build !unix

package store

import (
	"anchor/internal/ann"
	"anchor/internal/embedding"
)

// MapBinaryFile falls back to LoadBinaryFile on platforms without mmap
// support; close is then a no-op and the embedding has no lifetime bound.
func MapBinaryFile(path string) (e *embedding.Embedding, close func() error, err error) {
	e, err = LoadBinaryFile(path)
	if err != nil {
		return nil, nil, err
	}
	return e, func() error { return nil }, nil
}

// MapANNFile falls back to LoadANNFile on platforms without mmap
// support; close is then a no-op and the index has no lifetime bound.
func MapANNFile(path string) (ix *ann.Index, close func() error, err error) {
	ix, err = LoadANNFile(path)
	if err != nil {
		return nil, nil, err
	}
	return ix, func() error { return nil }, nil
}
