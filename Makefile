GO ?= go

.PHONY: build test vet fmt race serve-smoke bench bench-artifacts

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Race-detector pass over the traffic-serving layer: the HTTP API and the
# artifact store handle concurrent requests over shared state.
race:
	$(GO) test -race ./internal/serve/... ./internal/store/...

# Boot the HTTP server against the small config and hit /v1/healthz.
serve-smoke:
	$(GO) build -o /tmp/anchor-serve-smoke ./cmd/anchor
	@/tmp/anchor-serve-smoke serve -addr 127.0.0.1:18517 -config small & \
	pid=$$!; \
	ok=1; \
	for i in $$(seq 1 20); do \
		sleep 0.25; \
		if curl -fsS http://127.0.0.1:18517/v1/healthz; then ok=0; echo; break; fi; \
	done; \
	kill $$pid 2>/dev/null; \
	exit $$ok

# Kernel and measure micro-benchmarks (the set CI archives per PR),
# including the retained pre-PR k-NN loop for speedup comparison, plus the
# downstream-training benchmarks (fast vs retained reference trainers) and
# the grid-cell benchmark with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMulATB|BenchmarkMulABT|BenchmarkKNNMeasure|BenchmarkSVD|BenchmarkEigenspaceInstability|BenchmarkPIPLoss|BenchmarkSemanticDisplacement|BenchmarkQuantize' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkKNNMeasureReference3000' -benchtime 1x ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkTrainLinearBOW|BenchmarkNERTrain|BenchmarkGridCell' -benchmem .

# Full paper-artifact regeneration benchmarks (slow; trains the grid).
bench-artifacts:
	$(GO) test -run '^$$' -bench 'BenchmarkFig|BenchmarkTable|BenchmarkRule|BenchmarkProp' -benchtime 1x .
