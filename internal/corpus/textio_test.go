package corpus

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteTextRoundTrip(t *testing.T) {
	cfg := TestConfig()
	orig := Generate(cfg, Wiki17)
	var buf bytes.Buffer
	if err := orig.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := FromText(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tokens != orig.Tokens {
		t.Fatalf("token count %d != %d after round trip", got.Tokens, orig.Tokens)
	}
	if len(got.Sentences) != len(orig.Sentences) {
		t.Fatalf("sentence count %d != %d", len(got.Sentences), len(orig.Sentences))
	}
	// Word ids change (frequency-ranked), but the word strings per
	// position must be identical.
	for i := range orig.Sentences {
		for j := range orig.Sentences[i] {
			wOrig := orig.Vocab.Words[orig.Sentences[i][j]]
			wGot := got.Vocab.Words[got.Sentences[i][j]]
			if wOrig != wGot {
				t.Fatalf("sentence %d token %d: %q != %q", i, j, wOrig, wGot)
			}
		}
	}
}

func TestFromTextFrequencyRankedIDs(t *testing.T) {
	text := "a a a b b c\na b\n"
	c, err := FromText(strings.NewReader(text), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Vocab.Words[0] != "a" || c.Vocab.Words[1] != "b" || c.Vocab.Words[2] != "c" {
		t.Fatalf("vocab not frequency ranked: %v", c.Vocab.Words)
	}
	if c.Counts[0] != 4 || c.Counts[1] != 3 || c.Counts[2] != 1 {
		t.Fatalf("counts wrong: %v", c.Counts)
	}
	if c.Docs != 2 || c.Tokens != 8 {
		t.Fatalf("docs=%d tokens=%d", c.Docs, c.Tokens)
	}
}

func TestFromTextMinCount(t *testing.T) {
	text := "a a b\nb c\n"
	c, err := FromText(strings.NewReader(text), 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Vocab.Size() != 2 {
		t.Fatalf("vocab size %d, want 2 (c dropped)", c.Vocab.Size())
	}
	if _, ok := c.Vocab.Index["c"]; ok {
		t.Fatal("rare word kept")
	}
	// Sentences keep only retained words.
	if len(c.Sentences[1]) != 1 {
		t.Fatalf("second sentence should shrink to 1 token: %v", c.Sentences[1])
	}
}

func TestFromTextEmpty(t *testing.T) {
	if _, err := FromText(strings.NewReader(""), 1); err == nil {
		t.Fatal("expected error for empty corpus")
	}
}

func TestFromTextSkipsBlankLines(t *testing.T) {
	c, err := FromText(strings.NewReader("a b\n\n\nb a\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sentences) != 2 {
		t.Fatalf("got %d sentences, want 2", len(c.Sentences))
	}
}
