package anchor_test

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"anchor"
	"anchor/internal/ann"
)

// TestServiceANNSidecarRoundTrip is the serving-tier persistence
// acceptance test: the first ANN query builds the IVF index and persists
// it as a .ann sidecar next to the snapshot's artifacts; a fresh service
// over the same cache directory answers the same query bitwise from the
// sidecar without rebuilding.
func TestServiceANNSidecarRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	s1 := newTinyService(t, anchor.WithCacheDir(dir))
	words := serviceQueryWords(t, s1, 5)
	opts := []anchor.QueryOption{anchor.QueryK(5), anchor.QueryANN(true)}
	rep1, err := s1.Neighbors(ctx, "mc", 8, words, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.QueryStats(); st.ANNBuilds != 1 {
		t.Fatalf("first service builds = %d, want 1", st.ANNBuilds)
	}
	sidecars, err := filepath.Glob(filepath.Join(dir, "*"+ann.Ext))
	if err != nil || len(sidecars) != 1 {
		t.Fatalf("sidecars on disk = %v (err %v), want exactly one", sidecars, err)
	}

	s2 := newTinyService(t, anchor.WithCacheDir(dir))
	rep2, err := s2.Neighbors(ctx, "mc", 8, words, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.QueryStats(); st.ANNBuilds != 0 {
		t.Fatalf("warm service rebuilt the index: builds = %d", st.ANNBuilds)
	}
	if st := s2.StoreStats(); st.ANNDiskHits != 1 {
		t.Fatalf("warm service store stats = %+v, want 1 ANN disk hit", st)
	}
	for i := range rep1.Results {
		a, b := rep1.Results[i].Neighbors, rep2.Results[i].Neighbors
		if len(a) != len(b) {
			t.Fatalf("word %d: %d vs %d neighbors", i, len(a), len(b))
		}
		for j := range a {
			if a[j].ID != b[j].ID || math.Float64bits(a[j].Score) != math.Float64bits(b[j].Score) {
				t.Fatalf("word %d neighbor %d differs across restart: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
}

// serviceQueryWords samples vocabulary words from the tiny corpus.
func serviceQueryWords(t *testing.T, svc *anchor.Service, n int) []string {
	t.Helper()
	e, err := svc.Train(context.Background(), "mc", 2017, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Words) < n {
		t.Fatalf("vocab too small: %d", len(e.Words))
	}
	words := make([]string, n)
	for i := range words {
		words[i] = e.Words[(i*13)%len(e.Words)]
	}
	return words
}
