// Package corpus synthesizes the textual corpora anchor trains embeddings
// on. The paper uses two full Wikipedia dumps collected a year apart
// (Wiki'17 and Wiki'18); offline we reproduce the property that matters —
// two large corpora that are statistically almost identical except for a
// small temporal drift — with a seeded topic-mixture language model:
//
//   - a Zipf-distributed background vocabulary,
//   - K topics, each a Zipf distribution over its own word subset,
//   - documents that mix one or two topics with the background,
//   - morphologically structured word strings (stem+suffix families) so
//     subword models (fastText) have real signal.
//
// The Wiki'18 analogue is derived from the Wiki'17 generator by perturbing
// the topic prior, reassigning a small fraction of words to new topics,
// regenerating a small fraction of documents, and appending ~1% extra
// documents — the same kinds of small changes that distinguish two
// consecutive Wikipedia snapshots.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Year identifies which corpus snapshot to generate.
type Year int

// The two snapshots studied in the paper.
const (
	Wiki17 Year = 2017
	Wiki18 Year = 2018
)

// Drift controls how the Wiki'18 snapshot differs from Wiki'17.
type Drift struct {
	// TopicPriorShift is the relative perturbation applied to each topic's
	// prior probability (±shift, deterministic per topic).
	TopicPriorShift float64
	// DocResampleFrac is the fraction of documents regenerated from an
	// independent random stream.
	DocResampleFrac float64
	// ExtraDocsFrac is the fraction of additional documents appended
	// (the paper observes instability from "just 1% more data").
	ExtraDocsFrac float64
	// WordShiftFrac is the fraction of words whose primary topic changes
	// (usage drift).
	WordShiftFrac float64
}

// DefaultDrift mirrors the magnitude of change between two Wikipedia
// snapshots a year apart: small but pervasive.
func DefaultDrift() Drift {
	return Drift{
		TopicPriorShift: 0.08,
		DocResampleFrac: 0.03,
		ExtraDocsFrac:   0.01,
		WordShiftFrac:   0.02,
	}
}

// Config parameterizes the synthetic corpus generator. The same Config
// with the same Year always produces the identical corpus.
type Config struct {
	VocabSize  int     // number of word types
	NumTopics  int     // number of latent topics
	NumDocs    int     // documents in the Wiki'17 snapshot
	SentPerDoc int     // average sentences per document
	SentLenMin int     // minimum tokens per sentence
	SentLenMax int     // maximum tokens per sentence
	TopicMix   float64 // probability a token is drawn from the document topic(s) rather than background
	ZipfExp    float64 // Zipf exponent for word frequency decay
	Seed       int64   // base seed; shared between the two snapshots
	Drift      Drift   // how Wiki'18 differs from Wiki'17
}

// DefaultConfig returns the repro-scale configuration: large enough that
// embeddings capture topic structure, small enough for laptop runs.
func DefaultConfig() Config {
	return Config{
		VocabSize:  1500,
		NumTopics:  20,
		NumDocs:    700,
		SentPerDoc: 8,
		SentLenMin: 6,
		SentLenMax: 18,
		TopicMix:   0.65,
		ZipfExp:    1.0,
		Seed:       42,
		Drift:      DefaultDrift(),
	}
}

// TestConfig returns a miniature configuration for unit tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.VocabSize = 400
	c.NumTopics = 8
	c.NumDocs = 150
	return c
}

// Vocab is the shared word inventory. Word IDs are stable across the two
// snapshots, so embedding row i always refers to the same word.
type Vocab struct {
	Words []string
	Index map[string]int
}

// Size returns the number of word types.
func (v *Vocab) Size() int { return len(v.Words) }

// Corpus is a generated snapshot: tokenized sentences over a shared vocab.
type Corpus struct {
	Year      Year
	Vocab     *Vocab
	Sentences [][]int32
	Counts    []int64 // token count per word id
	Tokens    int64   // total token count
	Docs      int     // number of documents generated
}

// splitmix64 is the deterministic hash used for all per-item decisions,
// so drift choices are reproducible and independent of Go's rand stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashFloat(x uint64) float64 { // uniform in [0,1)
	return float64(splitmix64(x)>>11) / float64(1<<53)
}

// BuildVocab constructs the morphologically structured word inventory for
// cfg. Words come in families sharing a stem ("kubona", "kubonas",
// "kubonaing", ...), giving subword models genuine shared structure.
func BuildVocab(cfg Config) *Vocab {
	consonants := []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"}
	vowels := []string{"a", "e", "i", "o", "u"}
	suffixes := []string{"", "s", "ed", "ing", "ly", "er"}

	syllable := func(i uint64) string {
		h := splitmix64(i)
		return consonants[h%uint64(len(consonants))] + vowels[(h>>8)%uint64(len(vowels))]
	}
	words := make([]string, 0, cfg.VocabSize)
	seen := map[string]bool{}
	stem := 0
	for len(words) < cfg.VocabSize {
		base := syllable(uint64(cfg.Seed)+uint64(stem)*3) +
			syllable(uint64(cfg.Seed)+uint64(stem)*3+1) +
			syllable(uint64(cfg.Seed)+uint64(stem)*3+2)
		for _, suf := range suffixes {
			w := base + suf
			if !seen[w] {
				seen[w] = true
				words = append(words, w)
				if len(words) == cfg.VocabSize {
					break
				}
			}
		}
		stem++
	}
	idx := make(map[string]int, len(words))
	for i, w := range words {
		idx[w] = i
	}
	return &Vocab{Words: words, Index: idx}
}

// yearParams holds the fully resolved generative parameters for one
// snapshot: cumulative distributions for the background and each topic,
// and the topic prior CDF.
type yearParams struct {
	topicCDF   []float64   // CDF over topics
	background []float64   // CDF over all words
	topicWords [][]int32   // word ids per topic
	topicDists [][]float64 // CDF over topicWords[k]
}

// primaryTopic returns the topic a word belongs to in the given year,
// applying the WordShiftFrac usage drift for Wiki'18.
func primaryTopic(cfg Config, w int, year Year) int {
	base := int(splitmix64(uint64(cfg.Seed)*31+uint64(w)) % uint64(cfg.NumTopics))
	if year == Wiki18 && hashFloat(uint64(cfg.Seed)*77+uint64(w)) < cfg.Drift.WordShiftFrac {
		shift := 1 + int(splitmix64(uint64(cfg.Seed)*101+uint64(w))%uint64(cfg.NumTopics-1))
		return (base + shift) % cfg.NumTopics
	}
	return base
}

// zipfCDF builds a CDF where item i (in rank order given by perm) has
// weight 1/(rank+2.7)^exp.
func zipfCDF(n int, exp float64, rankOf func(i int) int) []float64 {
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		w := 1 / math.Pow(float64(rankOf(i))+2.7, exp)
		sum += w
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

func buildParams(cfg Config, year Year) *yearParams {
	p := &yearParams{}

	// Frequency ranks: a seeded permutation of word ids.
	rankPerm := rand.New(rand.NewSource(cfg.Seed + 7)).Perm(cfg.VocabSize)
	rankOf := make([]int, cfg.VocabSize)
	for rank, w := range rankPerm {
		rankOf[w] = rank
	}
	p.background = zipfCDF(cfg.VocabSize, cfg.ZipfExp, func(i int) int { return rankOf[i] })

	// Topic membership (year-dependent via usage drift).
	p.topicWords = make([][]int32, cfg.NumTopics)
	for w := 0; w < cfg.VocabSize; w++ {
		k := primaryTopic(cfg, w, year)
		p.topicWords[k] = append(p.topicWords[k], int32(w))
	}
	p.topicDists = make([][]float64, cfg.NumTopics)
	for k := range p.topicWords {
		words := p.topicWords[k]
		if len(words) == 0 {
			p.topicDists[k] = nil
			continue
		}
		// Within-topic Zipf, ordered by global rank so frequent words stay frequent.
		sort.Slice(words, func(a, b int) bool { return rankOf[words[a]] < rankOf[words[b]] })
		p.topicDists[k] = zipfCDF(len(words), cfg.ZipfExp, func(i int) int { return i })
	}

	// Topic prior: Zipf over topics, perturbed for Wiki'18.
	prior := make([]float64, cfg.NumTopics)
	var sum float64
	for k := range prior {
		w := 1 / math.Pow(float64(k)+2, 0.5)
		if year == Wiki18 {
			g := 2*hashFloat(uint64(cfg.Seed)*13+uint64(k)) - 1
			w *= 1 + cfg.Drift.TopicPriorShift*g
		}
		sum += w
		prior[k] = sum
	}
	p.topicCDF = prior
	for k := range p.topicCDF {
		p.topicCDF[k] /= sum
	}
	return p
}

func sampleCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Generate produces the snapshot for the given year. Identical inputs
// always yield the identical corpus.
func Generate(cfg Config, year Year) *Corpus {
	if cfg.VocabSize < cfg.NumTopics {
		panic(fmt.Sprintf("corpus: vocab size %d < topics %d", cfg.VocabSize, cfg.NumTopics))
	}
	vocab := BuildVocab(cfg)
	params := buildParams(cfg, year)

	numDocs := cfg.NumDocs
	if year == Wiki18 {
		numDocs = int(float64(cfg.NumDocs) * (1 + cfg.Drift.ExtraDocsFrac))
	}

	c := &Corpus{Year: year, Vocab: vocab, Counts: make([]int64, cfg.VocabSize), Docs: numDocs}
	for doc := 0; doc < numDocs; doc++ {
		docSeed := int64(splitmix64(uint64(cfg.Seed)<<20 + uint64(doc)))
		if year == Wiki18 && hashFloat(uint64(cfg.Seed)*997+uint64(doc)) < cfg.Drift.DocResampleFrac {
			docSeed = int64(splitmix64(uint64(docSeed) ^ 0xD0C5A17))
		}
		rng := rand.New(rand.NewSource(docSeed))

		// One or two topics per document.
		t1 := sampleCDF(params.topicCDF, rng.Float64())
		t2 := sampleCDF(params.topicCDF, rng.Float64())
		nSent := cfg.SentPerDoc/2 + rng.Intn(cfg.SentPerDoc+1)
		for s := 0; s < nSent; s++ {
			n := cfg.SentLenMin + rng.Intn(cfg.SentLenMax-cfg.SentLenMin+1)
			sent := make([]int32, n)
			for i := 0; i < n; i++ {
				var w int32
				if rng.Float64() < cfg.TopicMix {
					k := t1
					if rng.Float64() < 0.3 {
						k = t2
					}
					words := params.topicWords[k]
					if len(words) == 0 {
						w = int32(sampleCDF(params.background, rng.Float64()))
					} else {
						w = words[sampleCDF(params.topicDists[k], rng.Float64())]
					}
				} else {
					w = int32(sampleCDF(params.background, rng.Float64()))
				}
				sent[i] = w
				c.Counts[w]++
				c.Tokens++
			}
			c.Sentences = append(c.Sentences, sent)
		}
	}
	return c
}

// TopWords returns the ids of the k most frequent words in the corpus
// (ties broken by id). The paper computes all embedding distance measures
// over the top-10k most frequent words; this is the analogous selector.
func (c *Corpus) TopWords(k int) []int {
	ids := make([]int, len(c.Counts))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if c.Counts[ids[a]] != c.Counts[ids[b]] {
			return c.Counts[ids[a]] > c.Counts[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// PrimaryTopic exposes the latent topic of a word in a given year. The
// downstream task generators use it to construct learnable datasets
// (sentiment lexicons and NER gazetteers aligned with topic structure).
func PrimaryTopic(cfg Config, word int, year Year) int { return primaryTopic(cfg, word, year) }
