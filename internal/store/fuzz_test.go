package store

import (
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"anchor/internal/embedding"
)

// fuzzArtifact builds a valid encoded artifact without *testing.T so it
// can seed the fuzz corpus. Mirrors binTestEmbedding/encodeValid.
func fuzzArtifact(rows, cols int, f32exact bool, kind ElemKind) []byte {
	rng := rand.New(rand.NewSource(7))
	e := embedding.New(rows, cols)
	for i := range e.Vectors.Data {
		v := rng.NormFloat64()
		if f32exact {
			v = float64(float32(v))
		}
		e.Vectors.Data[i] = v
	}
	e.Words = make([]string, rows)
	for i := range e.Words {
		e.Words[i] = "w" + strings.Repeat("x", i%3) + string(rune('a'+i%26))
	}
	e.Meta = embedding.Meta{Algorithm: "cbow", Corpus: "wiki17", Dim: cols, Seed: 42, Precision: 32}
	var buf strings.Builder
	if err := WriteBinary(&buf, e, kind); err != nil {
		panic(err)
	}
	return []byte(buf.String())
}

// FuzzDecodeBinary throws arbitrary, corrupt, and truncated bytes at the
// binary-artifact decoder. The decoder's contract under damage is the
// repo-wide degradation contract in miniature: decode cleanly and
// bitwise-faithfully, or return an error — never panic, never hand back
// an embedding a re-encode chokes on. Run by `make fuzz-smoke` and CI
// with a 30s budget.
func FuzzDecodeBinary(f *testing.F) {
	valid := fuzzArtifact(8, 3, false, Float64)
	f.Add(valid)
	f.Add(fuzzArtifact(8, 3, true, Float32))
	f.Add([]byte{})
	// The corrupt fixtures from TestBinaryRejectsCorrupt seed the corpus
	// so the fuzzer starts at every rejection branch.
	mutate := func(m func([]byte) []byte) { f.Add(m(append([]byte(nil), valid...))) }
	mutate(func(d []byte) []byte { return d[:binHeaderLen-1] })
	mutate(func(d []byte) []byte { return d[:len(d)-1] })
	mutate(func(d []byte) []byte { return append(d, 0) })
	mutate(func(d []byte) []byte { d[0] = 'X'; return d })
	mutate(func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[8:12], 9) // bad elem kind
		return d
	})
	mutate(func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[16:24], math.MaxUint64/2) // rows overflow
		return d
	})
	mutate(func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[44:48], 1<<20) // algo len past payload
		return d
	})
	mutate(func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[52:56], 2) // word count mismatch
		return d
	})
	mutate(func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[76:80], 0xdeadbeef) // checksum mismatch
		return d
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("bounded input size")
		}
		e, err := DecodeBinary(data)
		if err != nil {
			if e != nil {
				t.Fatal("decode returned both an embedding and an error")
			}
			return
		}
		// A successful decode must produce a self-consistent embedding
		// that survives a round trip through the writer.
		if e == nil {
			t.Fatal("decode returned neither an embedding nor an error")
		}
		if len(e.Words) != e.Rows() {
			t.Fatalf("decoded %d words for %d rows", len(e.Words), e.Rows())
		}
		if err := WriteBinary(io.Discard, e, PickKind(e)); err != nil {
			t.Fatalf("re-encode of successfully decoded artifact failed: %v", err)
		}
	})
}
