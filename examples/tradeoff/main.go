// Tradeoff sweeps the dimension x precision grid for one embedding
// algorithm and reports the paper's stability-memory tradeoff (Figures 1
// and 2): downstream instability falls roughly linearly in log2(memory),
// and the fitted slope is the paper's rule of thumb.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"anchor"
	"anchor/internal/tasks/sentiment"
)

func main() {
	ccfg := anchor.DefaultCorpusConfig()
	ccfg.VocabSize = 600
	ccfg.NumDocs = 300
	c17 := anchor.GenerateCorpus(ccfg, anchor.Wiki17)
	c18 := anchor.GenerateCorpus(ccfg, anchor.Wiki18)
	ds := sentiment.Generate(c17, ccfg, sentiment.SST2Params())

	dims := []int{8, 16, 32, 64}
	precisions := []int{1, 4, 32}
	const seed = 1

	fmt.Println("dim  bits  memory(bits/word)  disagreement(%)")
	var pts []anchor.LinearLogPoint
	for _, dim := range dims {
		e17, err := anchor.TrainEmbedding("mc", c17, dim, seed)
		if err != nil {
			log.Fatal(err)
		}
		e18, err := anchor.TrainEmbedding("mc", c18, dim, seed)
		if err != nil {
			log.Fatal(err)
		}
		e18.AlignTo(e17)
		e18.Meta.Corpus = "wiki18a"
		for _, bits := range precisions {
			q17, q18 := anchor.QuantizePair(e17, e18, bits)
			cfg := sentiment.DefaultLinearBOWConfig(seed)
			m17 := sentiment.TrainLinearBOW(q17, ds, cfg)
			m18 := sentiment.TrainLinearBOW(q18, ds, cfg)
			di := anchor.PredictionDisagreementPct(m17.Predict(ds.Test), m18.Predict(ds.Test))
			mem := dim * bits
			fmt.Printf("%3d  %4d  %17d  %6.2f\n", dim, bits, mem, di)
			pts = append(pts, anchor.LinearLogPoint{Task: "sst2", X: float64(mem), Y: di})
		}
	}

	fit := anchor.FitStabilityMemoryTrend(pts)
	fmt.Printf("\nfitted rule of thumb: doubling memory lowers instability by %.2f%% absolute\n", fit.Slope)
	fmt.Println("(the paper reports 1.3% at Wikipedia scale; the shape, not the constant, is the claim)")
}
