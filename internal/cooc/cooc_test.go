package cooc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anchor/internal/corpus"
)

// tinyCorpus builds a corpus with hand-specified sentences over n words.
func tinyCorpus(n int, sents [][]int32) *corpus.Corpus {
	c := &corpus.Corpus{
		Vocab:  &corpus.Vocab{Words: make([]string, n), Index: map[string]int{}},
		Counts: make([]int64, n),
	}
	for _, s := range sents {
		c.Sentences = append(c.Sentences, s)
		for _, w := range s {
			c.Counts[w]++
			c.Tokens++
		}
	}
	return c
}

func find(m *Matrix, r, cl int32) (float64, bool) {
	if r > cl {
		r, cl = cl, r
	}
	for _, e := range m.Entries {
		if e.Row == r && e.Col == cl {
			return e.Val, true
		}
	}
	return 0, false
}

func TestCountWindowUniform(t *testing.T) {
	c := tinyCorpus(4, [][]int32{{0, 1, 2, 3}})
	m := Count(c, 2, Uniform)
	// Pairs within window 2: (0,1),(0,2),(1,2),(1,3),(2,3).
	cases := []struct {
		r, c int32
		want float64
	}{
		{0, 1, 1}, {0, 2, 1}, {1, 2, 1}, {1, 3, 1}, {2, 3, 1},
	}
	for _, cse := range cases {
		got, ok := find(m, cse.r, cse.c)
		if !ok || got != cse.want {
			t.Fatalf("count(%d,%d) = %v ok=%v, want %v", cse.r, cse.c, got, ok, cse.want)
		}
	}
	if _, ok := find(m, 0, 3); ok {
		t.Fatal("pair (0,3) outside window should be absent")
	}
}

func TestCountInverseDistance(t *testing.T) {
	c := tinyCorpus(3, [][]int32{{0, 1, 2}})
	m := Count(c, 2, InverseDistance)
	if v, _ := find(m, 0, 2); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("distance-2 weight = %v, want 0.5", v)
	}
	if v, _ := find(m, 0, 1); math.Abs(v-1) > 1e-12 {
		t.Fatalf("distance-1 weight = %v, want 1", v)
	}
}

func TestCountSymmetricAccumulation(t *testing.T) {
	// Word order reversed must produce the same unordered counts.
	a := Count(tinyCorpus(3, [][]int32{{0, 1}, {1, 0}}), 1, Uniform)
	if v, _ := find(a, 0, 1); v != 2 {
		t.Fatalf("accumulated count = %v, want 2", v)
	}
}

func TestCountDoesNotCrossSentences(t *testing.T) {
	c := tinyCorpus(2, [][]int32{{0}, {1}})
	m := Count(c, 5, Uniform)
	if m.NNZ() != 0 {
		t.Fatalf("no pairs expected across sentences, got %d", m.NNZ())
	}
}

func TestPPMIPositiveAndCorrect(t *testing.T) {
	// Corpus where words 0,1 always co-occur and 2,3 always co-occur.
	sents := [][]int32{}
	for i := 0; i < 20; i++ {
		sents = append(sents, []int32{0, 1}, []int32{2, 3})
	}
	// A couple of cross pairs to create low-PMI entries.
	sents = append(sents, []int32{0, 2})
	c := tinyCorpus(4, sents)
	m := Count(c, 1, Uniform)
	p := PPMI(m)
	v01, ok01 := find(p, 0, 1)
	if !ok01 || v01 <= 0 {
		t.Fatalf("PPMI(0,1) = %v, want > 0", v01)
	}
	v02, ok02 := find(p, 0, 2)
	// Rare cross pair: PMI should be much lower than the frequent pair
	// (it may be clipped away entirely).
	if ok02 && v02 >= v01 {
		t.Fatalf("PPMI(0,2)=%v should be below PPMI(0,1)=%v", v02, v01)
	}
	for _, e := range p.Entries {
		if e.Val <= 0 {
			t.Fatalf("PPMI entry (%d,%d)=%v not positive", e.Row, e.Col, e.Val)
		}
	}
}

func TestPPMIManualValue(t *testing.T) {
	// Single sentence {0,1}: one unordered pair. Symmetric interpretation:
	// total mass = 2, p(0,1) = 2/2 = 1, p(0) = p(1) = 1/2.
	// PMI = log(1 / (0.5*0.5)) = log 4.
	c := tinyCorpus(2, [][]int32{{0, 1}})
	p := PPMI(Count(c, 1, Uniform))
	v, ok := find(p, 0, 1)
	if !ok || math.Abs(v-math.Log(4)) > 1e-12 {
		t.Fatalf("PPMI = %v, want log(4)", v)
	}
}

func TestLogCounts(t *testing.T) {
	c := tinyCorpus(2, [][]int32{{0, 1}, {0, 1}, {0, 1}})
	m := Count(c, 1, Uniform)
	lc := LogCounts(m)
	v, _ := find(lc, 0, 1)
	if math.Abs(v-math.Log(4)) > 1e-12 {
		t.Fatalf("LogCounts = %v, want log(1+3)", v)
	}
}

func TestEntriesSorted(t *testing.T) {
	cfg := corpus.TestConfig()
	m := Count(corpus.Generate(cfg, corpus.Wiki17), 5, InverseDistance)
	for i := 1; i < len(m.Entries); i++ {
		a, b := m.Entries[i-1], m.Entries[i]
		if a.Row > b.Row || (a.Row == b.Row && a.Col >= b.Col) {
			t.Fatal("entries not strictly sorted")
		}
	}
	if m.NNZ() == 0 {
		t.Fatal("expected nonzero co-occurrence entries")
	}
}

func TestCountTotalWeightProperty(t *testing.T) {
	// With uniform weighting and window >= max sentence length, total
	// stored weight equals the number of unordered within-sentence pairs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nWords := 2 + rng.Intn(6)
		var sents [][]int32
		wantPairs := 0.0
		for s := 0; s < 1+rng.Intn(5); s++ {
			n := 1 + rng.Intn(6)
			sent := make([]int32, n)
			for i := range sent {
				sent[i] = int32(rng.Intn(nWords))
			}
			sents = append(sents, sent)
			wantPairs += float64(n*(n-1)) / 2
		}
		m := Count(tinyCorpus(nWords, sents), 10, Uniform)
		var total float64
		for _, e := range m.Entries {
			total += e.Val
		}
		return math.Abs(total-wantPairs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// densePPMI computes PPMI on a tiny corpus from first principles: a dense
// symmetric count matrix (unordered pairs mirrored off the diagonal, self
// pairs counted once on it), joint and marginal probabilities, then
// max(0, log(pij/(pi*pj))).
func densePPMI(n int, sents [][]int32, window int) ([][]float64, [][]float64, float64) {
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
	}
	for _, sent := range sents {
		for i := 0; i < len(sent); i++ {
			lim := i + window
			if lim >= len(sent) {
				lim = len(sent) - 1
			}
			for j := i + 1; j <= lim; j++ {
				a, b := sent[i], sent[j]
				dense[a][b]++
				if a != b {
					dense[b][a]++
				}
			}
		}
	}
	var total float64
	rowSums := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rowSums[i] += dense[i][j]
			total += dense[i][j]
		}
	}
	ppmi := make([][]float64, n)
	for i := range ppmi {
		ppmi[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if dense[i][j] == 0 {
				continue
			}
			// Joint mass of the unordered pair {i,j}: both mirrored cells
			// off the diagonal, the single cell on it.
			pair := dense[i][j]
			if i != j {
				pair += dense[j][i]
			}
			v := math.Log((pair / total) / (rowSums[i] / total * rowSums[j] / total))
			if v > 0 {
				ppmi[i][j] = v
			}
		}
	}
	return ppmi, dense, total
}

// TestPPMIMassAccounting pins the sparse storage convention: the implied
// joint distribution (off-diagonal entries doubled, diagonal entries
// single) must sum to 1 over the same total mass a dense symmetric count
// matrix produces, and the resulting PPMI values must match a dense
// brute-force computation cell for cell.
func TestPPMIMassAccounting(t *testing.T) {
	// Repeats and self-co-occurrences included so diagonal entries exist.
	sents := [][]int32{
		{0, 1, 2, 0}, {3, 4, 3}, {1, 1, 2}, {0, 2, 2, 1}, {4, 0, 4},
	}
	const n, window = 5, 2
	c := tinyCorpus(n, sents)
	m := Count(c, window, Uniform)

	hasDiagonal := false
	for _, e := range m.Entries {
		if e.Row == e.Col {
			hasDiagonal = true
		}
	}
	if !hasDiagonal {
		t.Fatal("test corpus produced no diagonal entries; mass accounting untested")
	}

	wantPPMI, _, wantTotal := densePPMI(n, sents, window)

	// Implied joint distribution: off-diagonal doubled, diagonal single.
	var total, joint float64
	for _, e := range m.Entries {
		if e.Row != e.Col {
			total += 2 * e.Val
		} else {
			total += e.Val
		}
	}
	if math.Abs(total-wantTotal) > 1e-9 {
		t.Fatalf("sparse total mass %v, dense total mass %v", total, wantTotal)
	}
	for _, e := range m.Entries {
		cnt := e.Val
		if e.Row != e.Col {
			cnt *= 2
		}
		joint += cnt / total
	}
	if math.Abs(joint-1) > 1e-12 {
		t.Fatalf("implied joint distribution sums to %v, want 1", joint)
	}

	p := PPMI(m)
	for _, e := range p.Entries {
		if math.Abs(e.Val-wantPPMI[e.Row][e.Col]) > 1e-12 {
			t.Fatalf("PPMI(%d,%d) = %v, dense brute force %v", e.Row, e.Col, e.Val, wantPPMI[e.Row][e.Col])
		}
	}
	// Every positive dense cell must be present in the sparse result.
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if wantPPMI[i][j] > 0 {
				if _, ok := find(p, int32(i), int32(j)); !ok {
					t.Fatalf("dense PPMI(%d,%d)=%v missing from sparse result", i, j, wantPPMI[i][j])
				}
			}
		}
	}
}

// TestCountWorkerInvariant checks the deterministic-parallelism contract:
// sharded counting must produce bitwise identical matrices for any worker
// count, including the sequential path.
func TestCountWorkerInvariant(t *testing.T) {
	c := corpus.Generate(corpus.TestConfig(), corpus.Wiki17)
	for _, w := range []Weighting{Uniform, InverseDistance} {
		ref := CountWorkers(c, 5, w, 1)
		for _, workers := range []int{2, 4, 8} {
			got := CountWorkers(c, 5, w, workers)
			if got.NNZ() != ref.NNZ() {
				t.Fatalf("weighting %d workers %d: nnz %d vs %d", w, workers, got.NNZ(), ref.NNZ())
			}
			for i := range ref.Entries {
				if got.Entries[i] != ref.Entries[i] {
					t.Fatalf("weighting %d workers %d: entry %d differs: %+v vs %+v",
						w, workers, i, got.Entries[i], ref.Entries[i])
				}
			}
		}
	}
}

func TestPPMISymmetricInputOrder(t *testing.T) {
	// PPMI must not depend on which member of an unordered pair appears
	// first in the corpus.
	a := PPMI(Count(tinyCorpus(3, [][]int32{{0, 1}, {1, 2}}), 1, Uniform))
	b := PPMI(Count(tinyCorpus(3, [][]int32{{1, 0}, {2, 1}}), 1, Uniform))
	if a.NNZ() != b.NNZ() {
		t.Fatalf("nnz differs: %d vs %d", a.NNZ(), b.NNZ())
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a.Entries[i], b.Entries[i])
		}
	}
}
