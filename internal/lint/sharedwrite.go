package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedWrite enforces the disjoint-write clause of the determinism
// contract: goroutines may write captured slices only through indices that
// partition the slice per goroutine (the accs[s]-style shape used by
// internal/parallel, where s is a closure parameter or local). Map writes
// and appends from inside a goroutine are never partitionable — append
// moves the backing array and maps are unsafe for concurrent mutation.
// This is the race shape `go test -race` reports only when a schedule
// happens to exhibit it; the analyzer flags it on every build.
var SharedWrite = &Analyzer{
	Name: "sharedwrite",
	Doc: "flags goroutine closures writing to captured maps or slices " +
		"without disjoint index partitioning (append, map stores, and " +
		"element writes whose index is itself captured)",
	Run: runSharedWrite,
}

func runSharedWrite(pass *Pass) error {
	for _, file := range pass.Files {
		for _, lit := range goroutineBodies(file) {
			checkGoroutineWrites(pass, lit)
		}
	}
	return nil
}

func checkGoroutineWrites(pass *Pass, lit *ast.FuncLit) {
	info := pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested launches are visited on their own
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			switch target := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr:
				base, captured := capturedBase(info, target.X, lit.Pos(), lit.End())
				if base == nil || !captured {
					continue
				}
				bt := info.Types[target.X].Type
				if bt == nil {
					continue
				}
				if isMap(bt) {
					pass.Reportf(as.Pos(),
						"store into captured map %s inside a goroutine: concurrent map writes fault and merge order is scheduling-dependent; accumulate per-shard maps and merge in shard order",
						types.ExprString(target.X))
				} else if !mentionsLocal(info, target.Index, lit.Pos(), lit.End()) {
					pass.Reportf(as.Pos(),
						"write to captured %s through captured index %s inside a goroutine: indices must partition the buffer per goroutine (pass the index as a closure parameter)",
						types.ExprString(target.X), types.ExprString(target.Index))
				}
			case *ast.Ident, *ast.SelectorExpr:
				if i < len(as.Rhs) && isSelfAppend(info, lhs, as.Rhs[i], lit.Pos(), lit.End()) {
					pass.Reportf(as.Pos(),
						"append to captured %s inside a goroutine: append may move the backing array and element order depends on scheduling; give each goroutine its own slice and concatenate in fixed order",
						types.ExprString(lhs))
				}
			}
		}
		return true
	})
}

// isSelfAppend reports whether rhs is append(lhs, ...) with lhs captured
// from outside the closure span.
func isSelfAppend(info *types.Info, lhs, rhs ast.Expr, lo, hi token.Pos) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
		return false
	}
	if types.ExprString(call.Args[0]) != types.ExprString(lhs) {
		return false
	}
	_, captured := capturedBase(info, lhs, lo, hi)
	return captured
}
