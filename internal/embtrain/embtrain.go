// Package embtrain implements the word embedding algorithms studied in the
// paper, from scratch on the synthetic corpora: CBOW with negative sampling
// (word2vec), GloVe, online matrix completion on PPMI (MC), and the
// fastText-style subword skipgram used in Appendix E.1.
//
// Every trainer is deterministic given (corpus, dim, seed): training runs
// single-threaded with a seeded RNG, so embedding instability in the
// experiments comes only from the modelled sources (corpus drift and the
// explicit seed), matching the paper's controlled setup.
package embtrain

import (
	"math"
	"math/rand"

	"anchor/internal/corpus"
	"anchor/internal/embedding"
)

// Trainer is the common interface implemented by all embedding algorithms.
type Trainer interface {
	// Train learns an embedding of the given dimension from the corpus.
	Train(c *corpus.Corpus, dim int, seed int64) *embedding.Embedding
	// Name returns the algorithm identifier used in Meta and reports.
	Name() string
}

// ByName returns the trainer with default configuration for the given
// algorithm name ("cbow", "glove", "mc", or "fasttext"); ok is false for
// unknown names.
func ByName(name string) (Trainer, bool) {
	switch name {
	case "cbow":
		return NewCBOW(), true
	case "glove":
		return NewGloVe(), true
	case "mc":
		return NewMC(), true
	case "fasttext":
		return NewFastText(), true
	}
	return nil, false
}

// unigramTable is the word2vec-style negative sampling table: words are
// drawn proportionally to count^power.
type unigramTable struct {
	table []int32
}

const unigramTableSize = 1 << 17

func newUnigramTable(counts []int64, power float64) *unigramTable {
	var z float64
	for _, c := range counts {
		if c > 0 {
			z += math.Pow(float64(c), power)
		}
	}
	t := &unigramTable{table: make([]int32, 0, unigramTableSize)}
	if z == 0 {
		t.table = append(t.table, 0)
		return t
	}
	// Standard word2vec table fill: word w occupies a contiguous stretch
	// proportional to count^power / z.
	next := func(w int) int {
		w++
		for w < len(counts) && counts[w] == 0 {
			w++
		}
		return w
	}
	w := next(-1)
	if w >= len(counts) {
		t.table = append(t.table, 0)
		return t
	}
	cum := math.Pow(float64(counts[w]), power) / z
	for i := 0; i < unigramTableSize; i++ {
		t.table = append(t.table, int32(w))
		if float64(i+1)/unigramTableSize > cum {
			if nw := next(w); nw < len(counts) {
				w = nw
				cum += math.Pow(float64(counts[w]), power) / z
			}
		}
	}
	return t
}

func (t *unigramTable) sample(rng *rand.Rand) int32 {
	return t.table[rng.Intn(len(t.table))]
}

// sigmoid returns 1/(1+exp(-x)) with clamping for numerical robustness.
func sigmoid(x float64) float64 {
	if x > 30 {
		return 1
	}
	if x < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// initMatrix fills data with the word2vec initialization: uniform in
// (-0.5/dim, 0.5/dim).
func initMatrix(data []float64, dim int, rng *rand.Rand) {
	for i := range data {
		data[i] = (rng.Float64() - 0.5) / float64(dim)
	}
}

// shuffledOrder returns a seeded permutation of [0, n).
func shuffledOrder(n int, rng *rand.Rand) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}
