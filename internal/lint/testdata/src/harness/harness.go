// Package harness exercises linttest edge cases: one expectation
// comment carrying two patterns for two findings on the same line, a
// block-comment expectation, an ignore directive naming an unknown rule
// (the pseudo-rule finding lands on the directive's own line, so its
// expectation lives inside the directive text), and a stale directive
// that suppresses nothing.
package harness

import "math/rand"

// TwoOnOneLine produces two findings on a single line.
func TwoOnOneLine() float64 {
	return rand.Float64() + float64(rand.Intn(3)) // want `global math/rand.Float64` `global math/rand.Intn`
}

// BlockComment binds a block-style expectation to its line.
func BlockComment() int {
	return rand.Intn(9) /* want `global math/rand.Intn` */
}

// UnknownRule carries a directive naming a rule that does not exist.
//
//anchorlint:ignore nosuchrule typo demo, see want `names unknown rule "nosuchrule"`
func UnknownRule() int {
	return 1
}

// Stale carries a directive over lines that are perfectly clean.
//
//anchorlint:ignore seedrand stale demo, see want `suppresses nothing \(rules seedrand\)`
func Stale() int {
	return 2
}
