package experiments

import (
	"fmt"
	"sync"

	"anchor/internal/compress"
	"anchor/internal/core"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/embtrain"
	"anchor/internal/parallel"
	"anchor/internal/tasks/ner"
	"anchor/internal/tasks/sentiment"
)

// Runner executes experiments against a Config, caching the expensive
// shared artifacts (corpora, trained embeddings, datasets, the
// measurement grid) across experiments so that running the whole suite
// trains each embedding exactly once.
type Runner struct {
	Cfg Config

	mu        sync.Mutex
	c17, c18  *corpus.Corpus
	embCache  map[string]*embedding.Embedding // full precision, wiki18 pre-aligned
	sentCache map[string]*sentiment.Dataset
	nerCache  *ner.Dataset
	topIDs    []int
	gridCache map[string][]Cell
}

// NewRunner returns a Runner for the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:       cfg,
		embCache:  map[string]*embedding.Embedding{},
		sentCache: map[string]*sentiment.Dataset{},
		gridCache: map[string][]Cell{},
	}
}

// Corpora returns the two snapshots, generating them on first use.
func (r *Runner) Corpora() (*corpus.Corpus, *corpus.Corpus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c17 == nil {
		r.c17 = corpus.Generate(r.Cfg.Corpus, corpus.Wiki17)
		r.c18 = corpus.Generate(r.Cfg.Corpus, corpus.Wiki18)
	}
	return r.c17, r.c18
}

// TopWordIDs returns the ids of the most frequent Wiki'17 words used for
// distance measures.
func (r *Runner) TopWordIDs() []int {
	c17, _ := r.Corpora()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.topIDs == nil {
		r.topIDs = c17.TopWords(r.Cfg.TopWords)
	}
	return r.topIDs
}

// Pair returns the full-precision embedding pair for (algo, dim, seed):
// the Wiki'17 embedding and the Wiki'18 embedding already aligned to it
// with orthogonal Procrustes (Section 3's protocol). Both are cached.
func (r *Runner) Pair(algo string, dim int, seed int64) (*embedding.Embedding, *embedding.Embedding) {
	c17, c18 := r.Corpora()
	k17 := fmt.Sprintf("%s|17|%d|%d", algo, dim, seed)
	k18 := fmt.Sprintf("%s|18|%d|%d", algo, dim, seed)

	r.mu.Lock()
	e17, ok17 := r.embCache[k17]
	e18, ok18 := r.embCache[k18]
	r.mu.Unlock()
	if ok17 && ok18 {
		return e17, e18
	}

	tr, ok := embtrain.ByNameWorkers(algo, r.Cfg.Workers)
	if !ok {
		panic("experiments: unknown algorithm " + algo)
	}
	e17 = tr.Train(c17, dim, seed)
	e18 = tr.Train(c18, dim, seed)
	e18.AlignTo(e17)
	// Mark the aligned variant so SVD caching cannot confuse it with an
	// unaligned embedding of the same provenance.
	e18.Meta.Corpus = "wiki18a"

	r.mu.Lock()
	r.embCache[k17] = e17
	r.embCache[k18] = e18
	r.mu.Unlock()
	return e17, e18
}

// QuantizedPair returns the (aligned) pair compressed to the given
// precision with a shared clip, sliced for measures only by the caller.
func (r *Runner) QuantizedPair(algo string, dim, prec int, seed int64) (*embedding.Embedding, *embedding.Embedding) {
	e17, e18 := r.Pair(algo, dim, seed)
	return compress.QuantizePair(e17, e18, prec)
}

// Anchors returns the EIS anchor embeddings for an algorithm and seed:
// the highest-dimensional full-precision pair, sliced to the top words.
func (r *Runner) Anchors(algo string, seed int64) (*embedding.Embedding, *embedding.Embedding) {
	e17, e18 := r.Pair(algo, r.Cfg.maxDim(), seed)
	ids := r.TopWordIDs()
	return e17.SubRows(ids), e18.SubRows(ids)
}

// SentimentData returns the named sentiment dataset (generated once from
// the Wiki'17 snapshot, shared by every model).
func (r *Runner) SentimentData(name string) *sentiment.Dataset {
	c17, _ := r.Corpora()
	r.mu.Lock()
	defer r.mu.Unlock()
	if ds, ok := r.sentCache[name]; ok {
		return ds
	}
	var p sentiment.Params
	switch name {
	case "sst2":
		p = sentiment.SST2Params()
	case "mr":
		p = sentiment.MRParams()
	case "subj":
		p = sentiment.SubjParams()
	case "mpqa":
		p = sentiment.MPQAParams()
	default:
		panic("experiments: unknown sentiment task " + name)
	}
	ds := sentiment.Generate(c17, r.Cfg.Corpus, p)
	r.sentCache[name] = ds
	return ds
}

// NERData returns the CoNLL-analogue dataset.
func (r *Runner) NERData() *ner.Dataset {
	c17, _ := r.Corpora()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nerCache == nil {
		r.nerCache = ner.Generate(c17, r.Cfg.Corpus, ner.CoNLLParams())
	}
	return r.nerCache
}

// Measures returns the configured measure set for (algo, seed), with the
// eigenspace instability anchors resolved and the config's worker budget
// threaded into every measure.
func (r *Runner) Measures(algo string, seed int64) []core.Measure {
	e, et := r.Anchors(algo, seed)
	w := r.Cfg.Workers
	eis := &core.EigenspaceInstability{E: e, ETilde: et, Alpha: r.Cfg.Alpha, Workers: w}
	knn := &core.KNN{K: r.Cfg.K, Queries: r.Cfg.KNNQueries, Seed: 7, Workers: w}
	return []core.Measure{
		eis, knn,
		core.SemanticDisplacement{Workers: w},
		core.PIPLoss{Workers: w},
		core.EigenspaceOverlap{Workers: w},
	}
}

// MeasureNames lists the measure names in reporting order (Table 1's rows).
func MeasureNames() []string {
	return []string{
		"eigenspace-instability", "1-knn", "semantic-displacement",
		"pip-loss", "1-eigenspace-overlap",
	}
}

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 selects all CPUs). fn must synchronize its own writes to
// shared state.
func parallelFor(workers, n int, fn func(i int)) {
	parallel.Run(workers, n, fn, nil)
}
