package embtrain

import (
	"math"
	"testing"

	"anchor/internal/corpus"
)

// TestNoDivergenceAcrossDims guards every trainer against numerical
// divergence across the dimension ladder (the failure mode is silent NaN
// embeddings that turn downstream disagreement into meaningless zeros).
func TestNoDivergenceAcrossDims(t *testing.T) {
	ccfg := corpus.DefaultConfig()
	ccfg.VocabSize = 600
	ccfg.NumDocs = 300
	c := corpus.Generate(ccfg, corpus.Wiki17)
	for _, name := range []string{"cbow", "glove", "mc", "fasttext"} {
		tr, _ := ByName(name)
		for _, dim := range []int{8, 32, 128} {
			e := tr.Train(c, dim, 1)
			for _, v := range e.Vectors.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s dim=%d: training diverged (non-finite values)", name, dim)
				}
			}
			if sep := topicSeparation(t, e, c, ccfg); sep < 0.03 {
				t.Fatalf("%s dim=%d: separation %.4f too low", name, dim, sep)
			}
		}
	}
}
