package experiments

import (
	"testing"

	"anchor/internal/core"
	"anchor/internal/corpus"
	"anchor/internal/tasks/sentiment"
)

// tinyGridConfig is a minimal grid for golden tests: one algorithm, two
// dims, two precisions, one seed, one sentiment task.
func tinyGridConfig() Config {
	cfg := SmallConfig()
	cfg.Corpus = corpus.TestConfig()
	cfg.Algorithms = []string{"mc"}
	cfg.Dims = []int{8, 16}
	cfg.Precisions = []int{1, 32}
	cfg.Seeds = []int64{1}
	cfg.SentimentTasks = []string{"sst2"}
	cfg.NEREnabled = false
	return cfg
}

// TestSentimentGridGoldenAcrossWorkers is the grid-level determinism
// contract: every DI, Acc, and measure value must be bitwise identical
// for Workers 1 and 4 (covering the parallel cell sweep, the concurrent
// Wiki'17/Wiki'18 pair training, and the blocked kernels).
func TestSentimentGridGoldenAcrossWorkers(t *testing.T) {
	r1 := NewRunner(tinyGridConfig())
	cfg4 := tinyGridConfig()
	cfg4.Workers = 4
	r4 := NewRunner(cfg4)
	r1.Cfg.Workers = 1

	g1 := r1.SentimentGrid()
	g4 := r4.SentimentGrid()
	if len(g1) != len(g4) {
		t.Fatalf("grid sizes differ: %d vs %d", len(g1), len(g4))
	}
	for i := range g1 {
		a, b := g1[i], g4[i]
		if a.Algo != b.Algo || a.Dim != b.Dim || a.Prec != b.Prec || a.Seed != b.Seed {
			t.Fatalf("cell %d identity mismatch", i)
		}
		for name, v := range a.DI {
			if b.DI[name] != v {
				t.Fatalf("cell %d DI[%s]: workers=1 %v != workers=4 %v", i, name, v, b.DI[name])
			}
		}
		for name, v := range a.Acc {
			if b.Acc[name] != v {
				t.Fatalf("cell %d Acc[%s]: workers=1 %v != workers=4 %v", i, name, v, b.Acc[name])
			}
		}
		for name, v := range a.Measures {
			if b.Measures[name] != v {
				t.Fatalf("cell %d measure %s: workers=1 %v != workers=4 %v", i, name, v, b.Measures[name])
			}
		}
	}
}

// TestGridCellMatchesReferenceTrainer recomputes one grid cell's DI and
// Acc with the retained slow-path trainer and prediction pipeline and
// requires bitwise equality with the fast grid values.
func TestGridCellMatchesReferenceTrainer(t *testing.T) {
	r := NewRunner(tinyGridConfig())
	r.Cfg.Workers = 1
	cells := r.SentimentGrid()
	cell := cells[0]

	q17, q18 := r.QuantizedPair(cell.Algo, cell.Dim, cell.Prec, cell.Seed)
	ds := r.SentimentData("sst2")
	cfg := sentiment.DefaultLinearBOWConfig(cell.Seed)
	m17 := sentiment.TrainLinearBOWReference(q17, ds, cfg)
	m18 := sentiment.TrainLinearBOWReference(q18, ds, cfg)
	p17, p18 := m17.Predict(ds.Test), m18.Predict(ds.Test)
	di := core.PredictionDisagreementPct(p17, p18)
	acc := sentiment.AccuracyOf(p17, ds.Test)
	if di != cell.DI["sst2"] {
		t.Fatalf("reference DI %v != grid DI %v", di, cell.DI["sst2"])
	}
	if acc != cell.Acc["sst2"] {
		t.Fatalf("reference Acc %v != grid Acc %v", acc, cell.Acc["sst2"])
	}
}

// TestGridCacheKeyIncludesTaskSet is the regression test for the cache-key
// bug: two grids over the same dims/precs/seeds but different task sets
// must not collide.
func TestGridCacheKeyIncludesTaskSet(t *testing.T) {
	r := NewRunner(tinyGridConfig())
	r.Cfg.Workers = 1
	g1 := r.SentimentGrid()
	if _, ok := g1[0].DI["sst2"]; !ok {
		t.Fatal("first grid missing sst2")
	}
	if _, ok := g1[0].DI["subj"]; ok {
		t.Fatal("first grid unexpectedly has subj")
	}
	r.Cfg.SentimentTasks = []string{"subj"}
	g2 := r.SentimentGrid()
	if _, ok := g2[0].DI["subj"]; !ok {
		t.Fatal("cache returned the sst2 grid for the subj task set: key ignores tasks")
	}
	if _, ok := g2[0].DI["sst2"]; ok {
		t.Fatal("subj grid unexpectedly has sst2")
	}
}
