package embedding

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"anchor/internal/matrix"
)

func randomEmbedding(n, d int, seed int64) *Embedding {
	rng := rand.New(rand.NewSource(seed))
	e := New(n, d)
	for i := range e.Vectors.Data {
		e.Vectors.Data[i] = rng.NormFloat64()
	}
	return e
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := randomEmbedding(7, 3, 1)
	e.Words = []string{"a", "b", "c", "d", "e", "f", "g"}
	e.Meta = Meta{Algorithm: "cbow", Corpus: "wiki17", Dim: 3, Seed: 9, Precision: 32}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 7 || got.Dim() != 3 {
		t.Fatalf("shape %dx%d", got.Rows(), got.Dim())
	}
	for i := range e.Vectors.Data {
		if got.Vectors.Data[i] != e.Vectors.Data[i] {
			t.Fatal("data mismatch after round trip")
		}
	}
	if got.Meta != e.Meta {
		t.Fatalf("meta mismatch: %+v vs %+v", got.Meta, e.Meta)
	}
	if got.Words[6] != "g" {
		t.Fatal("words mismatch")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "emb.gob")
	e := randomEmbedding(4, 2, 2)
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 4 || got.Dim() != 2 {
		t.Fatal("file round trip shape mismatch")
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("expected error for corrupt input")
	}
}

func TestAlignToRecoversRotation(t *testing.T) {
	ref := randomEmbedding(30, 4, 3)
	// Rotate ref by a random orthogonal matrix; AlignTo must undo it.
	rng := rand.New(rand.NewSource(4))
	svd := matrix.ComputeSVD(matrix.NewDenseRand(4, 4, 1, rng))
	rot := matrix.MulABT(svd.U, svd.V)
	e := &Embedding{Vectors: matrix.Mul(ref.Vectors, rot)}
	e.AlignTo(ref)
	diff := e.Vectors.Clone().Sub(ref.Vectors).FrobNorm()
	if diff > 1e-8 {
		t.Fatalf("alignment residual %v", diff)
	}
}

func TestAlignToNeverHurts(t *testing.T) {
	ref := randomEmbedding(20, 5, 5)
	e := randomEmbedding(20, 5, 6)
	before := e.Vectors.Clone().Sub(ref.Vectors).FrobNorm()
	e.AlignTo(ref)
	after := e.Vectors.Clone().Sub(ref.Vectors).FrobNorm()
	if after > before+1e-9 {
		t.Fatalf("alignment increased distance: %v -> %v", before, after)
	}
}

func TestSubRows(t *testing.T) {
	e := randomEmbedding(5, 2, 7)
	e.Words = []string{"v", "w", "x", "y", "z"}
	s := e.SubRows([]int{3, 0})
	if s.Rows() != 2 || s.Words[0] != "y" || s.Words[1] != "v" {
		t.Fatalf("SubRows wrong: %+v", s.Words)
	}
	for j := 0; j < 2; j++ {
		if s.Vectors.At(0, j) != e.Vectors.At(3, j) {
			t.Fatal("SubRows vector mismatch")
		}
	}
}

func TestMemoryBitsPerWord(t *testing.T) {
	e := randomEmbedding(3, 100, 8)
	if e.MemoryBitsPerWord() != 3200 {
		t.Fatalf("default precision should be 32: %d", e.MemoryBitsPerWord())
	}
	e.Meta.Precision = 4
	if e.MemoryBitsPerWord() != 400 {
		t.Fatal("4-bit precision memory wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := randomEmbedding(3, 3, 9)
	c := e.Clone()
	c.Vectors.Set(0, 0, math.Pi)
	if e.Vectors.At(0, 0) == math.Pi {
		t.Fatal("Clone shares storage")
	}
}

func TestMetaString(t *testing.T) {
	m := Meta{Algorithm: "mc", Corpus: "wiki18", Dim: 64, Seed: 2, Precision: 8}
	if m.String() != "mc-wiki18-d64-s2-b8" {
		t.Fatalf("Meta.String = %q", m.String())
	}
}
