package ann

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"anchor/internal/matrix"
)

// IVF sidecar format ("ANNI"), the index's persisted form. The sidecar
// lives next to the embedding's .bin artifact in the store's disk tier
// and follows the same design as the ANCB format (internal/store): a
// fixed little-endian header, a CRC-32C over the whole file, and raw
// payloads at a 64-byte-aligned offset so a load is one os.ReadFile (or
// mmap) plus a header check — the bytes are reinterpreted in place as
// the index's centroid, offset, and id storage with no copy.
//
// Version 1 layout (all integers little-endian):
//
//	[0:4)   magic "ANNI"
//	[4:8)   format version (currently 1)
//	[8:12)  nlist
//	[12:16) dim
//	[16:24) rows
//	[24:32) build seed
//	[32:36) build iteration budget
//	[36:40) sidecar checksum (CRC-32C over the entire file — header,
//	        padding, payloads — with this field zeroed)
//	[40:48) payload offset (from file start, 64-byte aligned)
//	[48:64) reserved (zero)
//	[payload offset:)
//	        centroids: nlist*dim float64
//	        starts:    (nlist+1) uint32 (list c = ids[starts[c]:starts[c+1]])
//	        ids:       rows int32, ascending within each list
//
// The checksum gives the sidecar the failure model's "correct bits or
// clean error" property: a torn write or bit rot surfaces as ErrCorrupt
// at decode time (the store quarantines the file and rebuilds the index
// from the embedding), never as a quietly different neighbor list. The
// structural checks go further than ANCB's because the payload carries
// invariants the search path relies on: starts must be monotone and span
// exactly [0, rows), and ids must be a permutation of [0, rows) sorted
// ascending within each list. A sidecar that passes Decode is safe to
// search without any further bounds checks.

const (
	annMagic = "ANNI"
	// FormatVersion is the current sidecar format version.
	FormatVersion = 1
	annHeaderLen  = 64
	annAlign      = 64
)

// Ext is the sidecar's file extension in the store's disk tier.
const Ext = ".ann"

// ErrCorrupt tags decode failures caused by damaged sidecar bytes —
// truncation, torn writes, bit rot, checksum or invariant violations —
// as opposed to a missing file or an I/O error. Loaders quarantine
// sidecars whose decode fails with errors.Is(err, ErrCorrupt) and
// rebuild the index from the embedding.
var ErrCorrupt = errors.New("corrupt ann sidecar")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("ann: %w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// castagnoli is the CRC-32C table for sidecar checksums (hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the host stores integers
// little-endian (the only layout the zero-copy casts are valid for;
// big-endian hosts fall back to element-wise decoding).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// payloadLen is the sidecar payload byte count for an index shape.
func payloadLen(nlist, dim, rows int) int {
	return nlist*dim*8 + (nlist+1)*4 + rows*4
}

// Encode writes ix to w in the sidecar format.
func Encode(w io.Writer, ix *Index) error {
	payloadOff := (annHeaderLen + annAlign - 1) / annAlign * annAlign
	pad := make([]byte, payloadOff-annHeaderLen)

	var h [annHeaderLen]byte
	copy(h[0:4], annMagic)
	binary.LittleEndian.PutUint32(h[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(h[8:12], uint32(ix.NList))
	binary.LittleEndian.PutUint32(h[12:16], uint32(ix.Dim))
	binary.LittleEndian.PutUint64(h[16:24], uint64(ix.Rows))
	binary.LittleEndian.PutUint64(h[24:32], uint64(ix.Seed))
	binary.LittleEndian.PutUint32(h[32:36], uint32(ix.Iters))
	binary.LittleEndian.PutUint64(h[40:48], uint64(payloadOff))

	cents := float64Bytes(ix.Centroids.Data)
	starts := uint32Bytes(ix.Starts)
	ids := int32Bytes(ix.IDs)

	// Whole-file checksum with the checksum field still zero; the header
	// precedes the payload on the wire and io.Writer cannot seek, so the
	// payload streams twice — once through the digest, once to w.
	d := crc32.New(castagnoli)
	d.Write(h[:])
	for _, b := range [][]byte{pad, cents, starts, ids} {
		d.Write(b)
	}
	binary.LittleEndian.PutUint32(h[36:40], d.Sum32())

	for _, b := range [][]byte{h[:], pad, cents, starts, ids} {
		if len(b) == 0 {
			continue
		}
		if _, err := w.Write(b); err != nil {
			return fmt.Errorf("ann: write sidecar: %w", err)
		}
	}
	return nil
}

// Decode decodes a sidecar from data and validates every invariant the
// search path relies on. On little-endian hosts with suitably aligned
// buffers the returned index aliases data directly (zero copy) — the
// caller must keep data immutable and alive for the index's lifetime
// (os.ReadFile allocations satisfy this; for mmap, see
// store.MapANNFile). Misaligned or big-endian loads copy.
func Decode(data []byte) (*Index, error) {
	if len(data) < annHeaderLen {
		return nil, corruptf("truncated: %d bytes < %d-byte header", len(data), annHeaderLen)
	}
	if string(data[0:4]) != annMagic {
		return nil, corruptf("not an ann sidecar (magic %q)", data[0:4])
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version < 1 || version > FormatVersion {
		return nil, fmt.Errorf("ann: sidecar version %d, want 1..%d", version, FormatVersion)
	}
	nlist := int(binary.LittleEndian.Uint32(data[8:12]))
	dim := int(binary.LittleEndian.Uint32(data[12:16]))
	rows := int(binary.LittleEndian.Uint64(data[16:24]))
	seed := int64(binary.LittleEndian.Uint64(data[24:32]))
	iters := int(binary.LittleEndian.Uint32(data[32:36]))
	wantSum := binary.LittleEndian.Uint32(data[36:40])
	payloadOff := int(binary.LittleEndian.Uint64(data[40:48]))

	if nlist < 1 || dim < 0 || rows < 0 || rows > math.MaxInt32 ||
		nlist > math.MaxInt/8/max(dim, 1) || rows > math.MaxInt/8/max(dim, 1) {
		return nil, corruptf("shape nlist=%d dim=%d rows=%d", nlist, dim, rows)
	}
	if payloadOff < annHeaderLen || payloadOff%annAlign != 0 {
		return nil, corruptf("payload offset %d", payloadOff)
	}
	if want := payloadOff + payloadLen(nlist, dim, rows); len(data) != want {
		return nil, corruptf("%d bytes, want %d for nlist=%d dim=%d rows=%d",
			len(data), want, nlist, dim, rows)
	}

	d := crc32.New(castagnoli)
	d.Write(data[:36])
	d.Write([]byte{0, 0, 0, 0}) // the checksum field, as hashed by the writer
	d.Write(data[40:])
	if got := d.Sum32(); got != wantSum {
		return nil, corruptf("sidecar checksum %08x, want %08x", got, wantSum)
	}

	off := payloadOff
	cents := decodeFloat64s(data[off:off+nlist*dim*8], nlist*dim)
	off += nlist * dim * 8
	starts := decodeUint32s(data[off:off+(nlist+1)*4], nlist+1)
	off += (nlist + 1) * 4
	ids := decodeInt32s(data[off:], rows)

	// Structural invariants: starts spans [0, rows) monotonically and ids
	// is an ascending-within-list permutation of [0, rows). A decoded
	// index is searched without further bounds checks, so damage that
	// survives the checksum math above (it cannot, but the decoder does
	// not rely on that) must still be rejected here.
	if starts[0] != 0 || starts[nlist] != uint32(rows) {
		return nil, corruptf("list offsets span [%d, %d), want [0, %d)", starts[0], starts[nlist], rows)
	}
	for c := 0; c < nlist; c++ {
		if starts[c] > starts[c+1] {
			return nil, corruptf("list offsets not monotone at cell %d", c)
		}
	}
	seen := make([]bool, rows)
	for c := 0; c < nlist; c++ {
		list := ids[starts[c]:starts[c+1]]
		for i, id := range list {
			if id < 0 || int(id) >= rows || seen[id] {
				return nil, corruptf("cell %d id %d invalid or duplicated", c, id)
			}
			if i > 0 && list[i-1] >= id {
				return nil, corruptf("cell %d ids not ascending", c)
			}
			seen[id] = true
		}
	}

	return &Index{
		Rows: rows, Dim: dim, NList: nlist, Seed: seed, Iters: iters,
		Centroids: matrix.NewDenseData(nlist, dim, cents),
		Starts:    starts,
		IDs:       ids,
	}, nil
}

// float64Bytes views vals as little-endian bytes (copying on big-endian
// hosts).
func float64Bytes(vals []float64) []byte {
	if len(vals) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*8)
	}
	b := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func uint32Bytes(vals []uint32) []byte {
	if len(vals) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*4)
	}
	b := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], v)
	}
	return b
}

func int32Bytes(vals []int32) []byte {
	if len(vals) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*4)
	}
	b := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	return b
}

func decodeFloat64s(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return vals
}

func decodeUint32s(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return vals
}

func decodeInt32s(b []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return vals
}
