// Package fpreduce holds fixtures for the fpreduce analyzer: floating-
// point sums whose term order depends on goroutine scheduling must be
// flagged, while shard-private accumulation folded in fixed order passes.
package fpreduce

import "sync"

// SharedSum accumulates under a mutex: race-free but order-dependent, the
// exact shape -race never reports.
func SharedSum(xs []float64) float64 {
	var mu sync.Mutex
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			mu.Lock()
			sum += x // want `floating-point accumulation into captured sum inside a goroutine`
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	return sum
}

// ShardSum is the sanctioned shape: shard-private accumulators written to
// disjoint slots, folded sequentially afterwards (parallel.Run's reduce).
func ShardSum(xs []float64, shards int) float64 {
	partial := make([]float64, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var local float64
			for i := s; i < len(xs); i += shards {
				local += xs[i]
			}
			partial[s] = local
		}(s)
	}
	wg.Wait()
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum
}

// ChanSum folds channel receives in arrival order.
func ChanSum(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		sum += v // want `floating-point accumulation of channel receives into sum`
	}
	return sum
}

// group mimics the errgroup/WaitGroup.Go launch shape.
type group struct{}

// Go runs f, standing in for an asynchronous launcher.
func (group) Go(f func()) { f() }

// GroupLaunch accumulates captured state from a .Go-launched closure.
func GroupLaunch(xs []float64) float64 {
	var g group
	var sum float64
	g.Go(func() {
		for _, x := range xs {
			sum += x // want `floating-point accumulation into captured sum inside a goroutine`
		}
	})
	return sum
}

// Counter increments an integer: associative, never flagged.
func Counter(n int) int {
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			count++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return count
}
