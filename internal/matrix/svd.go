package matrix

import (
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U * diag(S) * Vᵀ,
// where A is n-by-d (n >= rank), U is n-by-r with orthonormal columns,
// S holds the r positive singular values in descending order, and V is
// d-by-r with orthonormal columns. Singular values below RankTol times
// the largest are dropped, so r <= min(n, d) is the numerical rank.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// RankTol is the relative threshold below which singular values are
// treated as zero when forming the thin SVD.
const RankTol = 1e-12

// ComputeSVD returns the thin SVD of a using the one-sided Jacobi method,
// which is simple, numerically robust, and efficient for the tall-thin
// matrices that arise from embedding matrices (n rows >> d columns).
// The input is not modified.
func ComputeSVD(a *Dense) SVD {
	n, d := a.Rows, a.Cols
	if n < d {
		// Jacobi works column-wise; decompose the transpose and swap U/V.
		s := ComputeSVD(a.T())
		return SVD{U: s.V, S: s.S, V: s.U}
	}
	// Work on a copy: W starts as A; Jacobi rotations orthogonalize its
	// columns. At convergence W = U*diag(S) and V accumulates rotations.
	w := a.Clone()
	v := Identity(d)

	const maxSweeps = 60
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < d-1; p++ {
			for q := p + 1; q < d; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < n; i++ {
					wp := w.Data[i*d+p]
					wq := w.Data[i*d+q]
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if alpha == 0 || beta == 0 {
					continue
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				off++
				// Jacobi rotation that zeroes the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < n; i++ {
					wp := w.Data[i*d+p]
					wq := w.Data[i*d+q]
					w.Data[i*d+p] = c*wp - s*wq
					w.Data[i*d+q] = s*wp + c*wq
				}
				for i := 0; i < d; i++ {
					vp := v.Data[i*d+p]
					vq := v.Data[i*d+q]
					v.Data[i*d+p] = c*vp - s*vq
					v.Data[i*d+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Extract singular values as column norms; sort descending.
	type col struct {
		norm float64
		idx  int
	}
	cols := make([]col, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			x := w.Data[i*d+j]
			s += x * x
		}
		cols[j] = col{math.Sqrt(s), j}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].norm > cols[j].norm })

	// Drop numerically zero singular values to form the thin factorization.
	rank := 0
	tol := RankTol * cols[0].norm
	for rank < d && cols[rank].norm > tol && cols[rank].norm > 0 {
		rank++
	}
	if rank == 0 {
		rank = 1 // degenerate all-zero matrix: keep one column for shape sanity
	}

	u := NewDense(n, rank)
	vOut := NewDense(d, rank)
	sv := make([]float64, rank)
	for r := 0; r < rank; r++ {
		j := cols[r].idx
		sv[r] = cols[r].norm
		inv := 0.0
		if cols[r].norm > 0 {
			inv = 1 / cols[r].norm
		}
		for i := 0; i < n; i++ {
			u.Data[i*rank+r] = w.Data[i*d+j] * inv
		}
		for i := 0; i < d; i++ {
			vOut.Data[i*rank+r] = v.Data[i*d+j]
		}
	}
	return SVD{U: u, S: sv, V: vOut}
}

// Reconstruct returns U * diag(S) * Vᵀ, the matrix represented by the SVD.
func (s SVD) Reconstruct() *Dense {
	r := len(s.S)
	us := s.U.Clone()
	for i := 0; i < us.Rows; i++ {
		row := us.Row(i)
		for j := 0; j < r; j++ {
			row[j] *= s.S[j]
		}
	}
	return MulABT(us, s.V)
}

// Procrustes returns the orthogonal matrix R that minimizes ||X - Y*R||_F
// subject to RᵀR = I (Schönemann 1966). X and Y must have the same shape.
// The solution is R = U*Vᵀ where YᵀX = U*diag(S)*Vᵀ.
func Procrustes(x, y *Dense) *Dense {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		panic("matrix: Procrustes shape mismatch")
	}
	m := MulATB(y, x) // YᵀX, d-by-d
	s := ComputeSVD(m)
	return MulABT(s.U, s.V)
}

// LeastSquares solves min_w ||A*w - b||₂ via the normal equations with
// Tikhonov-free Cholesky; A must have full column rank. For the small,
// well-conditioned systems anchor solves (d <= a few hundred), this is
// accurate and fast.
func LeastSquares(a *Dense, b []float64) []float64 {
	if a.Rows != len(b) {
		panic("matrix: LeastSquares dimension mismatch")
	}
	ata := MulATB(a, a)
	atb := MulVecT(a, b)
	return SolveSPD(ata, atb)
}

// SolveSPD solves the symmetric positive-definite system m*x = b using
// Cholesky factorization. It panics if m is not positive definite.
func SolveSPD(m *Dense, b []float64) []float64 {
	n := m.Rows
	if m.Cols != n || len(b) != n {
		panic("matrix: SolveSPD dimension mismatch")
	}
	// Cholesky: m = L*Lᵀ.
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					panic("matrix: SolveSPD matrix not positive definite")
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward solve L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back solve Lᵀ*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}
