package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// fixtureSource builds deterministic random snapshots keyed by Ref, so
// two engines resolve bitwise-identical matrices for the same Ref.
func fixtureSource(rows int, calls *int32) Source {
	var mu sync.Mutex
	return func(ctx context.Context, ref Ref) (*embedding.Embedding, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mu.Lock()
		if calls != nil {
			*calls++
		}
		mu.Unlock()
		seed := ref.Seed*1000003 + int64(ref.Year)*31 + int64(ref.Dim)
		rng := rand.New(rand.NewSource(seed))
		e := embedding.New(rows, ref.Dim)
		e.Vectors = matrix.NewDenseRand(rows, ref.Dim, 1, rng)
		e.Words = make([]string, rows)
		for i := range e.Words {
			e.Words[i] = fmt.Sprintf("w%03d", i)
		}
		e.Meta = embedding.Meta{Algorithm: ref.Algo, Corpus: fmt.Sprintf("wiki%d", ref.Year%100), Dim: ref.Dim, Seed: ref.Seed, Precision: 32}
		return e, nil
	}
}

func ref17() Ref { return Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 1} }
func ref18() Ref { return Ref{Algo: "cbow", Year: 2018, Dim: 16, Seed: 1} }

// referenceNeighbors recomputes one word's top-k with a plain
// cosine-and-sort loop, the engine's independent oracle.
func referenceNeighbors(e *embedding.Embedding, id, k int) []int {
	type cand struct {
		id  int
		sim float64
	}
	var cands []cand
	norm := make([][]float64, e.Rows())
	for i := 0; i < e.Rows(); i++ {
		row := append([]float64(nil), e.Vector(i)...)
		floats.Normalize(row)
		norm[i] = row
	}
	for i := 0; i < e.Rows(); i++ {
		if i == id {
			continue
		}
		cands = append(cands, cand{i, floats.Dot(norm[id], norm[i])})
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.sim > a.sim || (b.sim == a.sim && b.id < a.id) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := range out {
		out[i] = cands[i].id
	}
	return out
}

func TestNeighborsMatchesReference(t *testing.T) {
	src := fixtureSource(60, nil)
	eng := New(src, WithWindow(0), WithWorkers(1))
	ctx := context.Background()
	e, _ := src(ctx, ref17())
	for _, word := range []string{"w000", "w007", "w059"} {
		ns, err := eng.Neighbors(ctx, ref17(), word, 5)
		if err != nil {
			t.Fatal(err)
		}
		id := 0
		fmt.Sscanf(word, "w%d", &id)
		want := referenceNeighbors(e, id, 5)
		if len(ns) != len(want) {
			t.Fatalf("%s: %d neighbors, want %d", word, len(ns), len(want))
		}
		for i := range ns {
			if ns[i].ID != want[i] {
				t.Fatalf("%s neighbor %d: id %d, want %d (got %+v)", word, i, ns[i].ID, want[i], ns)
			}
			if ns[i].Word != fmt.Sprintf("w%03d", want[i]) {
				t.Fatalf("%s neighbor %d: word %q", word, i, ns[i].Word)
			}
		}
	}
}

// queryAll fires one Neighbors call per word concurrently and collects
// the answers in word order.
func queryAll(t *testing.T, eng *Engine, ref Ref, words []string, k int) [][]Neighbor {
	t.Helper()
	out := make([][]Neighbor, len(words))
	var wg sync.WaitGroup
	errs := make([]error, len(words))
	for i, w := range words {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = eng.Neighbors(context.Background(), ref, w, k)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %s: %v", words[i], err)
		}
	}
	return out
}

func TestNeighborsBitwiseSingletonVsBatched(t *testing.T) {
	words := make([]string, 64)
	for i := range words {
		words[i] = fmt.Sprintf("w%03d", i*3%200)
	}

	singleton := New(fixtureSource(200, nil), WithWindow(0), WithWorkers(1))
	batched := New(fixtureSource(200, nil), WithWindow(5*time.Millisecond), WithWorkers(4))

	want := queryAll(t, singleton, ref17(), words, 7)
	got := queryAll(t, batched, ref17(), words, 7)
	for i := range words {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("word %s: singleton %+v != batched %+v", words[i], want[i], got[i])
		}
		for j := range want[i] {
			if math.Float64bits(want[i][j].Score) != math.Float64bits(got[i][j].Score) {
				t.Fatalf("word %s neighbor %d: score bits differ", words[i], j)
			}
		}
	}
	// The gather window must actually have coalesced something.
	st := batched.Stats()
	if st.Batches >= st.BatchedQueries {
		t.Fatalf("no coalescing: %d batches for %d queries", st.Batches, st.BatchedQueries)
	}

	// And the multi-word block path must agree bitwise too.
	block, err := New(fixtureSource(200, nil), WithWorkers(2)).NeighborsBatch(context.Background(), ref17(), words, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, block) {
		t.Fatal("NeighborsBatch differs from singleton answers")
	}
}

func TestNeighborsWorkerInvariance(t *testing.T) {
	words := []string{"w000", "w013", "w112", "w199"}
	var answers [][][]Neighbor
	for _, workers := range []int{1, 3, 8} {
		eng := New(fixtureSource(200, nil), WithWindow(0), WithWorkers(workers))
		ns, err := eng.NeighborsBatch(context.Background(), ref17(), words, 9)
		if err != nil {
			t.Fatal(err)
		}
		answers = append(answers, ns)
	}
	for i := 1; i < len(answers); i++ {
		if !reflect.DeepEqual(answers[0], answers[i]) {
			t.Fatalf("answers differ between worker counts: %+v vs %+v", answers[0], answers[i])
		}
	}
}

func TestVector(t *testing.T) {
	src := fixtureSource(40, nil)
	eng := New(src)
	ctx := context.Background()
	id, vec, err := eng.Vector(ctx, ref17(), "w017")
	if err != nil {
		t.Fatal(err)
	}
	if id != 17 {
		t.Fatalf("id = %d, want 17", id)
	}
	e, _ := src(ctx, ref17())
	if !reflect.DeepEqual(vec, e.Vector(17)) {
		t.Fatal("vector mismatch")
	}
	// The returned vector is a copy: mutating it must not corrupt the
	// resident snapshot.
	vec[0] = 1e9
	_, vec2, _ := eng.Vector(ctx, ref17(), "w017")
	if vec2[0] == 1e9 {
		t.Fatal("Vector returned shared storage")
	}
}

func TestUnknownWord(t *testing.T) {
	eng := New(fixtureSource(10, nil))
	_, _, err := eng.Vector(context.Background(), ref17(), "absent")
	var uw *UnknownWordError
	if !errors.As(err, &uw) || uw.Word != "absent" {
		t.Fatalf("err = %v, want UnknownWordError for %q", err, "absent")
	}
	_, err = eng.Neighbors(context.Background(), ref17(), "absent", 3)
	if !errors.As(err, &uw) {
		t.Fatalf("Neighbors err = %v, want UnknownWordError", err)
	}
}

func TestSnapshotLRUBudget(t *testing.T) {
	var calls int32
	// Each 16-dim, 50-row snapshot costs norm + pinned raw (2*50*16*8
	// bytes) plus the word index (50 4-byte words at 48 bytes overhead
	// each); budget exactly two snapshots.
	const snapBytes = 2*50*16*8 + 50*(4+48)
	eng := New(fixtureSource(50, &calls), WithBudget(2*snapBytes))
	ctx := context.Background()
	refs := []Ref{
		{Algo: "cbow", Year: 2017, Dim: 16, Seed: 1},
		{Algo: "cbow", Year: 2017, Dim: 16, Seed: 2},
		{Algo: "cbow", Year: 2017, Dim: 16, Seed: 3},
	}
	for _, r := range refs {
		if _, err := eng.Neighbors(ctx, r, "w001", 3); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", eng.Stats().Evictions)
	}
	// refs[0] was evicted: querying it reloads (calls 4); refs[2] is
	// resident: no reload.
	if _, err := eng.Neighbors(ctx, refs[2], "w001", 3); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("source calls = %d, want 3 (resident snapshot reloaded)", calls)
	}
	if _, err := eng.Neighbors(ctx, refs[0], "w001", 3); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("source calls = %d, want 4 (evicted snapshot not reloaded)", calls)
	}
}

func TestSnapshotSingleflight(t *testing.T) {
	var calls int32
	eng := New(fixtureSource(80, &calls))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Neighbors(context.Background(), ref17(), "w002", 4); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("source calls = %d, want 1 (concurrent loads must share)", calls)
	}
}

func TestNeighborDelta(t *testing.T) {
	eng := New(fixtureSource(120, nil))
	words := []string{"w000", "w005", "w033"}
	ds, err := eng.NeighborDelta(context.Background(), ref17(), ref18(), words, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(words) {
		t.Fatalf("%d deltas, want %d", len(ds), len(words))
	}
	for i, d := range ds {
		if d.Word != words[i] {
			t.Fatalf("delta %d word %q, want %q", i, d.Word, words[i])
		}
		if len(d.A) != 5 || len(d.B) != 5 {
			t.Fatalf("delta %s neighbor lists %d/%d, want 5/5", d.Word, len(d.A), len(d.B))
		}
		// Recompute the overlap from the returned lists.
		shared := 0
		for _, a := range d.A {
			for _, b := range d.B {
				if a.ID == b.ID {
					shared++
					break
				}
			}
		}
		if shared != d.Shared {
			t.Fatalf("delta %s shared %d, lists say %d", d.Word, d.Shared, shared)
		}
		if want := float64(shared) / 5; d.Overlap != want {
			t.Fatalf("delta %s overlap %v, want %v", d.Word, d.Overlap, want)
		}
	}
	// Identical refs must give perfect overlap.
	same, err := eng.NeighborDelta(context.Background(), ref17(), ref17(), words, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range same {
		if d.Overlap != 1 {
			t.Fatalf("self-delta overlap %v, want 1", d.Overlap)
		}
	}
}

func TestNeighborsRejectsBadK(t *testing.T) {
	eng := New(fixtureSource(10, nil))
	if _, err := eng.Neighbors(context.Background(), ref17(), "w001", 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := eng.NeighborsBatch(context.Background(), ref17(), []string{"w001"}, -2); err == nil {
		t.Fatal("k<0 accepted")
	}
	// k larger than the vocabulary clamps instead of failing.
	ns, err := eng.Neighbors(context.Background(), ref17(), "w001", 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 9 {
		t.Fatalf("clamped k: %d neighbors, want 9", len(ns))
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	eng := New(func(ctx context.Context, ref Ref) (*embedding.Embedding, error) { return nil, boom })
	if _, err := eng.Neighbors(context.Background(), ref17(), "w001", 3); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestCanceledLoadRetries(t *testing.T) {
	// A load canceled by its originator's context must not poison waiters
	// that are still alive.
	block := make(chan struct{})
	var calls int32
	var mu sync.Mutex
	src := func(ctx context.Context, ref Ref) (*embedding.Embedding, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			<-block
			return nil, context.Canceled
		}
		return fixtureSource(20, nil)(ctx, ref)
	}
	eng := New(src)
	canceledCtx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Neighbors(canceledCtx, ref17(), "w001", 3)
		done <- err
	}()
	// Wait until the first load is in flight, then let a second client
	// queue behind it.
	for {
		mu.Lock()
		inFlight := calls == 1
		mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	second := make(chan error, 1)
	go func() {
		_, err := eng.Neighbors(context.Background(), ref17(), "w001", 3)
		second <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	close(block)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("originator err = %v, want canceled", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("waiter err = %v, want retried success", err)
	}
}
