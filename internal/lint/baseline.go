package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A BaselineEntry identifies one accepted pre-existing finding. The key
// deliberately excludes line numbers: unrelated edits move findings
// around, and a baseline that churns on every edit stops being a
// shrink-only ratchet.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
}

// A Baseline is the set of findings accepted when a rule was adopted.
// New findings never enter it (the file is only written by
// -write-baseline at adoption time); entries that stop matching are
// stale and must be deleted, so the set only ever shrinks.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline persists the currently unsuppressed findings as a new
// baseline, deduplicated and sorted for stable diffs.
func WriteBaseline(path string, diags []Diagnostic) error {
	seen := make(map[BaselineEntry]bool)
	var b Baseline
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		e := BaselineEntry{Rule: d.Rule, File: RelPath(d.Pos.Filename), Message: d.Message}
		if !seen[e] {
			seen[e] = true
			b.Entries = append(b.Entries, e)
		}
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply marks diagnostics covered by the baseline as suppressed
// (Baselined) in place and returns the stale entries — baseline lines
// that matched no current finding. Callers must treat stale entries as
// failures: a fixed finding's entry has to be deleted, never left to
// mask a future regression with the same message.
//
// An entry is only judged stale when its rule is among running and its
// file among analyzed (nil means "all") — a partial run (-rules, or a
// package subset) proves nothing about entries it never re-checked.
func (b *Baseline) Apply(diags []Diagnostic, running, analyzed map[string]bool) []BaselineEntry {
	set := make(map[BaselineEntry]bool, len(b.Entries))
	for _, e := range b.Entries {
		set[e] = true
	}
	matched := make(map[BaselineEntry]bool, len(b.Entries))
	for i := range diags {
		d := &diags[i]
		if d.Suppressed {
			continue
		}
		e := BaselineEntry{Rule: d.Rule, File: RelPath(d.Pos.Filename), Message: d.Message}
		if set[e] {
			d.Suppressed = true
			d.Baselined = true
			d.SuppressReason = "baseline"
			matched[e] = true
		}
	}
	var stale []BaselineEntry
	for _, e := range b.Entries {
		if matched[e] {
			continue
		}
		if running != nil && !running[e.Rule] {
			continue
		}
		if analyzed != nil && !analyzed[e.File] {
			continue
		}
		stale = append(stale, e)
	}
	return stale
}
