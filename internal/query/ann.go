package query

import (
	"context"
	"fmt"

	"anchor/internal/ann"
	"anchor/internal/floats"
	"anchor/internal/matrix"
	"anchor/internal/parallel"
)

// Approximate search mode. Exact neighbor queries scan every resident
// row per query block; the opt-in ANN mode routes a query through the
// snapshot's IVF index (internal/ann) instead, scanning only the rows of
// the nprobe most query-similar cells. The exact path stays the golden
// reference oracle: every candidate the IVF path does score uses the
// same arithmetic, in the same order, as the exact kernels — a plain
// single-accumulator dot (plus, in compact modes, the same fixed-order
// inverse-norm scaling) — so at nprobe = NList the answer is bitwise
// identical to the exact path (pinned by TestANNFullProbeBitwiseExact),
// and at smaller nprobe every reported similarity is still exactly what
// the exact path would report for that candidate; only membership of the
// deep tail can differ.
//
// The index is derived data: built lazily per snapshot from its
// normalized rows (seeded by the snapshot's training seed, bitwise
// worker-count-invariant) and cached on the snapshot, optionally through
// an ANNSource that persists sidecars in the artifact store. ANN queries
// skip the micro-batching gather window — they do not share a matrix
// product, so there is nothing to coalesce.

// Mode selects the search strategy for one neighbors request.
type Mode struct {
	// ANN routes the query through the snapshot's IVF index.
	ANN bool
	// NProbe is the number of index cells scanned (<= 0 selects
	// ann.DefaultNProbe; >= the index's cell count reproduces the exact
	// answer bitwise). Ignored unless ANN is set.
	NProbe int
}

// ANNSource resolves the IVF index for a snapshot, given its build
// configuration and a build callback that constructs it from the
// resident rows. The production source is store.GetANN — sidecars
// persist next to the embedding artifacts — and nil means build
// in-process with no persistence.
type ANNSource func(ctx context.Context, ref Ref, cfg ann.Config, rows, dim int, build func() (*ann.Index, error)) (*ann.Index, error)

// WithANNSource routes index builds through src (nil = build in-process,
// no persistence).
func WithANNSource(src ANNSource) Option {
	return func(e *Engine) { e.annSrc = src }
}

// annIndex returns the snapshot's IVF index, building it on first use.
// The build is serialized per snapshot; concurrent ANN queries wait for
// one build rather than racing their own. The index's byte footprint is
// charged against the engine budget once built.
func (e *Engine) annIndex(ctx context.Context, s *snapshot) (*ann.Index, error) {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	if s.annIdx != nil {
		return s.annIdx, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The index identity is a pure function of the snapshot: seeded by the
	// snapshot's training seed with default geometry. Workers only bounds
	// build concurrency (bitwise invariant).
	cfg := ann.Config{Seed: s.ref.Seed, Workers: e.workers}
	build := func() (*ann.Index, error) {
		e.annBuilds.Add(1)
		return ann.Build(s.normalizedRows(e.workers), cfg), nil
	}
	var (
		ix  *ann.Index
		err error
	)
	if e.annSrc != nil {
		ix, err = e.annSrc(ctx, s.ref, cfg, s.rows, s.dim, build)
	} else {
		ix, err = build()
	}
	if err != nil {
		return nil, fmt.Errorf("query: ann index for %s: %w", s.ref, err)
	}
	s.annIdx = ix
	e.charge(s, ix.SizeBytes())
	return ix, nil
}

// normalizedRows returns the snapshot's rows in the index's input form:
// unit-normalized float64. The full-precision snapshot already holds
// them; compact snapshots materialize a transient copy (build-time only
// — the built index does not retain it).
func (s *snapshot) normalizedRows(workers int) *matrix.Dense {
	if s.mode == precFloat64 {
		return s.norm
	}
	m := matrix.NewDense(s.rows, s.dim)
	bands := parallel.Ranges(s.rows, parallel.Workers(workers))
	parallel.Run(workers, len(bands), func(sh int) {
		for i := bands[sh].Lo; i < bands[sh].Hi; i++ {
			row := m.Row(i)
			s.fillRaw(i, row)
			inv := s.inv[i]
			for j := range row {
				row[j] *= inv
			}
		}
	}, nil)
	return m
}

// fillRaw writes the snapshot's raw (unnormalized) row i into dst.
func (s *snapshot) fillRaw(i int, dst []float64) {
	switch s.mode {
	case precCodes:
		s.codes.DequantizeRow(i, dst)
	case precFloat32:
		s.raw32.WidenRow(i, dst)
	default:
		copy(dst, s.raw.Vector(i))
	}
}

// charge adds a derived allocation (the built index) to the snapshot's
// resident footprint and re-applies the byte budget. A snapshot evicted
// while its index was building is not charged — it is no longer
// resident, and its index goes with it.
func (e *Engine) charge(s *snapshot, delta int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.items[s.ref]; !ok {
		return
	}
	s.bytes += delta
	e.bytes += delta
	e.evictOverBudgetLocked()
}

// annCompute answers one slice of neighbor requests through the IVF
// index. Requests are independent — each query probes and scores on its
// own — so they fan out across workers with results written to disjoint
// slots; answers are bitwise identical for every worker count.
func (e *Engine) annCompute(s *snapshot, ix *ann.Index, reqs []*neighborReq, nprobe int) {
	e.annQueries.Add(int64(len(reqs)))
	n := s.rows
	parallel.Run(e.workers, len(reqs), func(i int) {
		r := reqs[i]
		srch := ann.NewSearcher(ix)
		qprobe, sim := s.annSim(r.id)
		ids := srch.Search(qprobe, r.k, nprobe, r.id, sim, make([]int32, min(r.k, n)))
		scores := make([]float64, len(ids))
		for j, id := range ids {
			scores[j] = sim(id)
		}
		r.out <- neighborAnswer{idxs: ids, sims: scores}
	}, nil)
}

// annSim returns the query row used to rank the index's centroids plus
// the per-candidate similarity callback for query row id — the exact
// path's arithmetic, one candidate at a time:
//
//   - float64: a dot of two normalized rows, the same single-accumulator
//     ascending loop as every element of the blocked kernel;
//   - codes/float32: the raw-row dot the LUT/widening kernel computes
//     (dequantized or widened per element in ascending order), scaled by
//     (dot·invQ)·invJ in scaleSims's fixed order.
func (s *snapshot) annSim(id int) (qprobe []float64, sim func(int32) float64) {
	if s.mode == precFloat64 {
		q := s.norm.Row(id)
		return q, func(j int32) float64 {
			return floats.Dot(q, s.norm.Row(int(j)))
		}
	}
	qraw := make([]float64, s.dim)
	s.fillRaw(id, qraw)
	qinv := s.inv[id]
	qprobe = make([]float64, s.dim)
	for k, v := range qraw {
		qprobe[k] = v * qinv
	}
	crow := make([]float64, s.dim)
	return qprobe, func(j int32) float64 {
		s.fillRaw(int(j), crow)
		return (floats.Dot(qraw, crow) * qinv) * s.inv[j]
	}
}

// NeighborsMode is Neighbors with an explicit search mode. The exact
// mode (zero Mode) micro-batches as usual; ANN queries go straight to
// the index.
func (e *Engine) NeighborsMode(ctx context.Context, ref Ref, word string, k int, m Mode) ([]Neighbor, error) {
	if !m.ANN {
		return e.Neighbors(ctx, ref, word, k)
	}
	out, err := e.NeighborsBatchMode(ctx, ref, []string{word}, k, m)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// NeighborsBatchMode is NeighborsBatch with an explicit search mode.
func (e *Engine) NeighborsBatchMode(ctx context.Context, ref Ref, words []string, k int, m Mode) ([][]Neighbor, error) {
	if !m.ANN {
		return e.NeighborsBatch(ctx, ref, words, k)
	}
	if k < 1 {
		return nil, fmt.Errorf("query: k must be positive, got %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := e.snapshot(ctx, ref)
	if err != nil {
		return nil, err
	}
	reqs := make([]*neighborReq, len(words))
	for i, w := range words {
		id, err := s.resolve(w)
		if err != nil {
			return nil, err
		}
		reqs[i] = &neighborReq{id: id, k: k, out: make(chan neighborAnswer, 1)}
	}
	ix, err := e.annIndex(ctx, s)
	if err != nil {
		return nil, err
	}
	e.annCompute(s, ix, reqs, m.NProbe)
	out := make([][]Neighbor, len(reqs))
	for i, r := range reqs {
		out[i] = s.neighbors(<-r.out)
	}
	return out, nil
}

// NeighborDeltaMode is NeighborDelta with an explicit search mode
// applied to both snapshots.
func (e *Engine) NeighborDeltaMode(ctx context.Context, refA, refB Ref, words []string, k int, m Mode) ([]Delta, error) {
	if !m.ANN {
		return e.NeighborDelta(ctx, refA, refB, words, k)
	}
	na, err := e.NeighborsBatchMode(ctx, refA, words, k, m)
	if err != nil {
		return nil, err
	}
	nb, err := e.NeighborsBatchMode(ctx, refB, words, k, m)
	if err != nil {
		return nil, err
	}
	return deltas(words, na, nb), nil
}
