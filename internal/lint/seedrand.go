package lint

import (
	"go/ast"
	"strings"
)

// DeterministicPackages lists the import paths (a trailing /... matches a
// subtree) whose results the determinism contract pins bitwise. The
// seedrand rule applies only inside these packages; drivers and tests may
// override the list.
var DeterministicPackages = []string{
	"anchor/internal/cooc",
	"anchor/internal/embtrain",
	"anchor/internal/core",
	"anchor/internal/matrix",
	"anchor/internal/nn",
	"anchor/internal/autodiff",
	"anchor/internal/query",
	// The IVF index must build bitwise identically for any worker count —
	// its k-means is the contract's only sanctioned use of randomness, and
	// it must come from an explicitly seeded source.
	"anchor/internal/ann",
	"anchor/internal/compress",
	"anchor/internal/selection",
	"anchor/internal/tasks/...",
	// The fault-injection harness must itself be deterministic — a chaos
	// run that cannot be replayed from its seed is useless as evidence.
	"anchor/internal/faults",
}

// IsDeterministicPkg reports whether the import path falls under
// DeterministicPackages.
func IsDeterministicPkg(path string) bool {
	for _, p := range DeterministicPackages {
		if sub, ok := strings.CutSuffix(p, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the shared global source. Constructors like
// New and NewSource are fine: the contract requires explicitly seeded
// per-shard *rand.Rand values, which is exactly what they build.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

// envFuncs are stdlib functions whose results depend on the clock or the
// process environment — values that change between runs and machines.
var envFuncs = map[[2]string]bool{
	{"time", "Now"}: true, {"time", "Since"}: true, {"time", "Until"}: true,
	{"time", "After"}: true, {"time", "AfterFunc"}: true, {"time", "Tick"}: true,
	{"time", "NewTimer"}: true, {"time", "NewTicker"}: true,
	{"os", "Getenv"}: true, {"os", "LookupEnv"}: true, {"os", "Environ"}: true,
}

// SeedRand enforces the seeded-RNG clause of the determinism contract: in
// a deterministic package, every random draw must come from an explicitly
// seeded generator (parallel.ShardRNG derives one per shard and round),
// never from the process-global math/rand source, and no value may be
// derived from the clock or the environment.
var SeedRand = &Analyzer{
	Name: "seedrand",
	Doc: "flags global math/rand functions and clock/env-derived values " +
		"(time.Now, os.Getenv, timers) inside deterministic packages; " +
		"randomness there must flow from seeded per-shard RNGs " +
		"(internal/parallel.ShardRNG)",
	Run: runSeedRand,
}

func runSeedRand(pass *Pass) error {
	if !IsDeterministicPkg(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFunc(pass.TypesInfo, call)
			if !ok {
				return true
			}
			switch {
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name]:
				pass.Reportf(call.Pos(),
					"global %s.%s in deterministic package %s: draw from a seeded per-shard RNG (parallel.ShardRNG) instead",
					pkgPath, name, pass.PkgPath)
			case envFuncs[[2]string{pkgPath, name}]:
				pass.Reportf(call.Pos(),
					"%s.%s in deterministic package %s: clock/environment-derived values break run-to-run determinism",
					pkgPath, name, pass.PkgPath)
			}
			return true
		})
	}
	return nil
}
