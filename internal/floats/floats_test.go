package floats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotAxpyScale(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	Axpy(2, x, y)
	want := []float64{6, 9, 12}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy got %v want %v", y, want)
		}
	}
	Scale(0.5, y)
	want = []float64{3, 4.5, 6}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Scale got %v want %v", y, want)
		}
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if Norm(x) != 5 {
		t.Fatalf("Norm = %v", Norm(x))
	}
	if Norm1(x) != 7 {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if L1Dist([]float64{1, 1}, []float64{0, 3}) != 3 {
		t.Fatal("L1Dist wrong")
	}
	if L2Dist([]float64{0, 0}, []float64{3, 4}) != 5 {
		t.Fatal("L2Dist wrong")
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{3, 4}
	n := Normalize(x)
	if n != 5 || math.Abs(Norm(x)-1) > 1e-15 {
		t.Fatalf("Normalize: n=%v norm=%v", n, Norm(x))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
}

func TestCosine(t *testing.T) {
	if CosineSim([]float64{1, 0}, []float64{0, 1}) != 0 {
		t.Fatal("orthogonal cosine should be 0")
	}
	if math.Abs(CosineSim([]float64{2, 0}, []float64{5, 0})-1) > 1e-15 {
		t.Fatal("parallel cosine should be 1")
	}
	if CosineDist([]float64{1, 0}, []float64{-1, 0}) != 2 {
		t.Fatal("antipodal cosine dist should be 2")
	}
	if CosineSim([]float64{0, 0}, []float64{1, 2}) != 0 {
		t.Fatal("zero vector cosine defined as 0")
	}
}

func TestCosineSimBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		c := CosineSim(x, y)
		return c >= -1-1e-12 && c <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumMeanStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Sum(x) != 40 {
		t.Fatal("Sum wrong")
	}
	if Mean(x) != 5 {
		t.Fatal("Mean wrong")
	}
	if StdDev(x) != 2 {
		t.Fatalf("StdDev = %v, want 2", StdDev(x))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate Mean/StdDev wrong")
	}
}

func TestMinMaxArgMax(t *testing.T) {
	x := []float64{3, -1, 7, 7, 2}
	if Max(x) != 7 || Min(x) != -1 || ArgMax(x) != 2 {
		t.Fatalf("Max/Min/ArgMax wrong: %v %v %v", Max(x), Min(x), ArgMax(x))
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(x, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated (Quantile sorts a copy).
	if x[0] != 1 || x[4] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestLogSumExp(t *testing.T) {
	x := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(x); math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want log(6)", got)
	}
	// Stability at large magnitudes.
	big := []float64{1000, 1000}
	if got := LogSumExp(big); math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp large = %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(empty) should be -Inf")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		dst := make([]float64, n)
		Softmax(dst, x)
		var s float64
		for _, v := range dst {
			if v < 0 || v > 1 {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxPreservesOrder(t *testing.T) {
	x := []float64{1, 3, 2}
	dst := make([]float64, 3)
	Softmax(dst, x)
	if !(dst[1] > dst[2] && dst[2] > dst[0]) {
		t.Fatalf("Softmax order violated: %v", dst)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"Dot":  func() { Dot([]float64{1}, []float64{1, 2}) },
		"Axpy": func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		"Add":  func() { Add([]float64{1}, []float64{1, 2}) },
		"Sub":  func() { Sub([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
