package anchor

import (
	"context"
	"errors"

	"anchor/internal/query"
)

// This file is the Service's read path: vector lookups, nearest-neighbor
// queries, and cross-snapshot neighbor-delta queries over trained
// snapshots, served by the micro-batching engine in internal/query.
// Embeddings come from the artifact store (trained at most once), are held
// query-ready in a byte-budgeted LRU, and concurrent neighbor queries are
// coalesced into shared matrix products — with answers bitwise identical
// to singleton execution for every worker count.

// UnknownWordError reports a query for a word outside the snapshot's
// vocabulary. The serve layer maps it to HTTP 404.
type UnknownWordError = query.UnknownWordError

// Neighbor is one nearest-neighbor answer entry (word, row id, cosine
// similarity).
type Neighbor = query.Neighbor

// WordDelta is one word's neighbor-overlap comparison between two
// snapshots — the served form of the paper's downstream-instability
// proxy.
type WordDelta = query.Delta

// queryParams accumulates per-query functional options. dim and bits
// hold the resolved values (after defaults and, in serving-budget mode,
// auto-selection); bits is the precision as reported (32 = full).
type queryParams struct {
	year   int
	k      int
	seed   int64
	bits   int
	dim    int
	ann    bool
	nprobe int
}

// mode renders the resolved ANN knobs as a query-engine search mode.
func (p queryParams) mode() query.Mode {
	return query.Mode{ANN: p.ann, NProbe: p.nprobe}
}

// QueryOption configures one Service query (Query, Neighbors,
// NeighborDelta).
type QueryOption func(*queryParams)

// QueryYear selects the corpus snapshot year, 2017 (default) or 2018.
// NeighborDelta ignores it: a delta always compares 2017 against 2018.
func QueryYear(year int) QueryOption {
	return func(p *queryParams) { p.year = year }
}

// QueryK sets the neighborhood size for Neighbors and NeighborDelta. The
// default is the service configuration's K (the paper uses 5). Vector
// queries ignore it.
func QueryK(k int) QueryOption {
	return func(p *queryParams) { p.k = k }
}

// QuerySeed selects the training seed of the queried snapshot (default:
// the service's default seed).
func QuerySeed(seed int64) QueryOption {
	return func(p *queryParams) { p.seed = seed }
}

// QueryPrecision selects the precision (bits per entry, 1..32) of the
// served snapshot. Snapshots at b <= 8 bits stay resident as packed
// codes and are scored through the LUT kernel, 9..31 as float32 rows —
// both bitwise identical to dequantizing and scoring in float64. The
// default is the service's default precision (32, full, unless
// WithPrecision says otherwise).
func QueryPrecision(bits int) QueryOption {
	return func(p *queryParams) { p.bits = bits }
}

// QueryANN routes Neighbors and NeighborDelta through the snapshot's
// deterministic IVF index (built on first use, persisted as a sidecar in
// the artifact store): each query scans only its most similar index
// cells instead of every row. Every similarity it reports is bitwise the
// exact path's value for that candidate; at small nprobe the deep tail
// of the answer set may differ. Vector queries ignore it.
func QueryANN(on bool) QueryOption {
	return func(p *queryParams) { p.ann = on }
}

// QueryNProbe sets how many index cells an ANN-routed query scans
// (<= 0 selects the index's default; at least the index's cell count
// reproduces the exact answer bitwise). Ignored without QueryANN.
func QueryNProbe(n int) QueryOption {
	return func(p *queryParams) { p.nprobe = n }
}

// queryParams resolves options against the service defaults and validates
// the shared request surface.
func (s *Service) queryParams(ctx context.Context, algo string, dim int, words []string, opts []QueryOption) (queryParams, error) {
	p := queryParams{year: 2017, k: s.runner.Cfg.K, seed: s.defSeed}
	for _, opt := range opts {
		opt(&p)
	}
	if err := errors.Join(ctx.Err(), s.checkAlgo(algo)); err != nil {
		return p, err
	}
	if p.year != 2017 && p.year != 2018 {
		return p, invalidf("year must be 2017 or 2018, got %d", p.year)
	}
	if p.k < 1 {
		return p, invalidf("k must be positive, got %d", p.k)
	}
	if len(words) == 0 {
		return p, invalidf("query needs at least one word")
	}
	p.dim = dim
	switch {
	case dim == 0 && s.servingBudget > 0:
		// Serving-budget mode: the selection algorithm picks the cell.
		// An explicit QueryPrecision still wins over the selected bits.
		choice, err := s.selectServing(ctx, algo, p.seed)
		if err != nil {
			return p, err
		}
		p.dim = choice.Dim
		if p.bits == 0 {
			p.bits = choice.Bits
		}
	case dim == 0:
		return p, invalidf("dimension must be positive, got 0 (set a serving budget to have it auto-selected)")
	}
	if err := validDim(p.dim); err != nil {
		return p, err
	}
	p.bits = s.bits(p.bits)
	if err := validBits(p.bits); err != nil {
		return p, err
	}
	return p, nil
}

// refBits normalizes a reported precision to the query engine's Ref
// convention, where 0 means full precision.
func refBits(bits int) int {
	if bits >= 32 {
		return 0
	}
	return bits
}

// WordVector is one vector-lookup answer.
type WordVector struct {
	// Word is the queried surface form.
	Word string `json:"word"`
	// ID is the word's vocabulary row id.
	ID int `json:"id"`
	// Vector is the word's embedding row (a copy; callers may keep it).
	Vector []float64 `json:"vector"`
}

// VectorsReport answers one vector-lookup query.
type VectorsReport struct {
	Algo string `json:"algo"`
	Year int    `json:"year"`
	Dim  int    `json:"dim"`
	// Bits is the served precision (32 = full).
	Bits int   `json:"bits"`
	Seed int64 `json:"seed"`
	// Vectors holds one entry per queried word, in request order.
	Vectors []WordVector `json:"vectors"`
}

// Query looks up the embedding vectors of words in one trained snapshot —
// the read path's GET: served from the query engine's resident snapshots,
// the artifact store, or a train on a cold miss. Defaults: year 2017,
// seed the service default.
func (s *Service) Query(ctx context.Context, algo string, dim int, words []string, opts ...QueryOption) (VectorsReport, error) {
	p, err := s.queryParams(ctx, algo, dim, words, opts)
	if err != nil {
		return VectorsReport{}, err
	}
	ref := query.Ref{Algo: algo, Year: p.year, Dim: p.dim, Seed: p.seed, Bits: refBits(p.bits)}
	rep := VectorsReport{Algo: algo, Year: p.year, Dim: p.dim, Bits: p.bits, Seed: p.seed,
		Vectors: make([]WordVector, len(words))}
	for i, w := range words {
		id, vec, err := s.engine.Vector(ctx, ref, w)
		if err != nil {
			return VectorsReport{}, err
		}
		rep.Vectors[i] = WordVector{Word: w, ID: id, Vector: vec}
	}
	return rep, nil
}

// WordNeighbors is one word's nearest-neighbor answer.
type WordNeighbors struct {
	Word string `json:"word"`
	// Neighbors is ordered by cosine similarity descending, id-ascending
	// tie-breaks, excluding the word itself.
	Neighbors []Neighbor `json:"neighbors"`
}

// NeighborsReport answers one nearest-neighbor query.
type NeighborsReport struct {
	Algo string `json:"algo"`
	Year int    `json:"year"`
	Dim  int    `json:"dim"`
	// Bits is the served precision (32 = full).
	Bits int   `json:"bits"`
	Seed int64 `json:"seed"`
	K    int   `json:"k"`
	// ANN marks answers served through the IVF index; NProbe is the
	// cells-scanned knob the query ran with (0 = the index default).
	ANN    bool `json:"ann,omitempty"`
	NProbe int  `json:"nprobe,omitempty"`
	// Results holds one entry per queried word, in request order.
	Results []WordNeighbors `json:"results"`
}

// Neighbors returns each word's k nearest neighbors by cosine similarity
// in one trained snapshot. Multi-word requests are scored as one blocked
// matrix product; concurrent single-word requests are micro-batched by
// the engine. Answers are bitwise identical for any batching and any
// worker count. Defaults: year 2017, k from the service configuration,
// seed the service default.
func (s *Service) Neighbors(ctx context.Context, algo string, dim int, words []string, opts ...QueryOption) (NeighborsReport, error) {
	p, err := s.queryParams(ctx, algo, dim, words, opts)
	if err != nil {
		return NeighborsReport{}, err
	}
	ref := query.Ref{Algo: algo, Year: p.year, Dim: p.dim, Seed: p.seed, Bits: refBits(p.bits)}
	rep := NeighborsReport{Algo: algo, Year: p.year, Dim: p.dim, Bits: p.bits, Seed: p.seed, K: p.k,
		ANN: p.ann, NProbe: p.nprobe,
		Results: make([]WordNeighbors, len(words))}
	if len(words) == 1 {
		// Singleton exact requests go through the gather window so
		// concurrent HTTP clients coalesce into one matrix product; ANN
		// requests go straight to the index.
		ns, err := s.engine.NeighborsMode(ctx, ref, words[0], p.k, p.mode())
		if err != nil {
			return NeighborsReport{}, err
		}
		rep.Results[0] = WordNeighbors{Word: words[0], Neighbors: ns}
		return rep, nil
	}
	ns, err := s.engine.NeighborsBatchMode(ctx, ref, words, p.k, p.mode())
	if err != nil {
		return NeighborsReport{}, err
	}
	for i, w := range words {
		rep.Results[i] = WordNeighbors{Word: w, Neighbors: ns[i]}
	}
	return rep, nil
}

// NeighborDeltaReport answers one neighbor-delta query: how much of each
// word's neighborhood survived the Wiki'17 → Wiki'18 retrain.
type NeighborDeltaReport struct {
	Algo string `json:"algo"`
	Dim  int    `json:"dim"`
	// Bits is the served precision (32 = full).
	Bits int   `json:"bits"`
	Seed int64 `json:"seed"`
	K    int   `json:"k"`
	// ANN marks deltas computed through each snapshot's IVF index;
	// NProbe is the cells-scanned knob (0 = the index default).
	ANN    bool `json:"ann,omitempty"`
	NProbe int  `json:"nprobe,omitempty"`
	// Results holds one delta per queried word, in request order.
	Results []WordDelta `json:"results"`
	// MeanOverlap averages the per-word overlaps: 1 = perfectly stable
	// neighborhoods, 0 = completely replaced.
	MeanOverlap float64 `json:"mean_overlap"`
}

// NeighborDelta compares each word's top-k neighbor sets between the
// Wiki'17 and Wiki'18 snapshots of one configuration — the paper's
// downstream-instability story as a single query: embeddings retrain on a
// slightly different corpus and the answers users observe (nearest
// neighbors) drift. Cosine neighborhoods are rotation-invariant, so no
// alignment pass is needed. Defaults: k from the service configuration,
// seed the service default.
func (s *Service) NeighborDelta(ctx context.Context, algo string, dim int, words []string, opts ...QueryOption) (NeighborDeltaReport, error) {
	p, err := s.queryParams(ctx, algo, dim, words, opts)
	if err != nil {
		return NeighborDeltaReport{}, err
	}
	refA := query.Ref{Algo: algo, Year: 2017, Dim: p.dim, Seed: p.seed, Bits: refBits(p.bits)}
	refB := query.Ref{Algo: algo, Year: 2018, Dim: p.dim, Seed: p.seed, Bits: refBits(p.bits)}
	s.note("neighbor-delta %s d=%d b=%d k=%d seed=%d (%d words)", algo, p.dim, p.bits, p.k, p.seed, len(words))
	ds, err := s.engine.NeighborDeltaMode(ctx, refA, refB, words, p.k, p.mode())
	if err != nil {
		return NeighborDeltaReport{}, err
	}
	rep := NeighborDeltaReport{Algo: algo, Dim: p.dim, Bits: p.bits, Seed: p.seed, K: p.k,
		ANN: p.ann, NProbe: p.nprobe, Results: ds}
	for _, d := range ds {
		rep.MeanOverlap += d.Overlap
	}
	rep.MeanOverlap /= float64(len(ds))
	return rep, nil
}

// QueryStats reports query-engine traffic (resident snapshot hits, loads,
// evictions, and micro-batching counters).
func (s *Service) QueryStats() query.Stats { return s.engine.Stats() }

// SnapshotInfo describes one query-ready resident snapshot: which
// artifact it serves, the precision mode it is resident in ("float64",
// "float32", or "codes"), and the bytes it pins in the query budget.
type SnapshotInfo = query.SnapshotInfo

// ResidentSnapshots lists the read path's resident snapshots, most
// recently used first.
func (s *Service) ResidentSnapshots() []SnapshotInfo { return s.engine.Resident() }
