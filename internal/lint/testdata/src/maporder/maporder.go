// Package maporder holds fixtures for the maporder analyzer: range-over-
// map bodies that emit order-sensitive results must be flagged unless the
// collect-then-sort idiom (or a keyed, visit-once accumulation) makes the
// result order-free.
package maporder

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// CollectUnsorted appends map keys and never sorts them.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration with no following sort`
	}
	return keys
}

// CollectSorted is the blessed collect-then-sort idiom (corpus.FromText).
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bag exercises sort detection on a field target via sort.Slice.
type bag struct{ items []string }

// CollectField appends into a struct field that is sorted afterwards.
func CollectField(m map[string]int) bag {
	var b bag
	for k := range m {
		b.items = append(b.items, k)
	}
	sort.Slice(b.items, func(i, j int) bool { return b.items[i] < b.items[j] })
	return b
}

// SumUnsorted folds float values in map iteration order.
func SumUnsorted(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside map iteration`
	}
	return sum
}

// MergeKeyed writes through the range key: every slot is visited exactly
// once, so iteration order cannot change the sums (the cooc shard merge).
func MergeKeyed(dst, src map[uint64]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// IntCount accumulates integers: associative, so order-free.
func IntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// LocalPerIteration resets its float accumulator every iteration, so only
// the unsorted append is order-sensitive.
func LocalPerIteration(m map[string][]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, vs := range m {
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		out = append(out, rowSum) // want `append to out inside map iteration`
	}
	return out
}

// EmitUnsorted interleaves I/O with map iteration.
func EmitUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside map iteration`
	}
}

// WriteAll streams keys through a writer method in map order.
func WriteAll(w *bufio.Writer, m map[string]bool) {
	for k := range m {
		w.WriteString(k) // want `WriteString call inside map iteration`
	}
}

// Scratch documents an intentionally unordered append in place.
func Scratch(m map[string]int) []string {
	var scratch []string
	for k := range m {
		//anchorlint:ignore maporder fixture: scratch order is irrelevant downstream
		scratch = append(scratch, k)
	}
	return scratch
}
