package experiments

import (
	"fmt"
	"sort"
)

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID          string
	Description string
	Run         func(*Runner) []*Table
}

// Registry lists every reproducible table and figure, keyed by the
// paper's artifact id.
func Registry() map[string]Experiment {
	return map[string]Experiment{
		"fig1":    {"fig1", "Instability vs dimension and precision (SST-2, CoNLL-2003)", Fig1},
		"fig2":    {"fig2", "NER instability vs memory with linear-log fit", Fig2},
		"rule":    {"rule", "Stability-memory rule of thumb (Section 3.3)", RuleOfThumb},
		"table1":  {"table1", "Spearman correlation of measures vs downstream instability", Table1},
		"table2":  {"table2", "Pairwise dim-prec selection error", Table2},
		"table3":  {"table3", "Distance to oracle under memory budgets", Table3},
		"fig3":    {"fig3", "KGE stability vs memory (TransE)", Fig3},
		"fig4":    {"fig4", "Dimension effect on extra sentiment tasks (appendix)", Fig4},
		"fig5":    {"fig5", "Precision effect on sentiment tasks (appendix)", Fig5},
		"fig6":    {"fig6", "Sentiment instability vs memory, full grid (appendix)", Fig6},
		"fig7":    {"fig7", "Sentiment quality tradeoffs (appendix)", Fig7},
		"fig8":    {"fig8", "NER quality tradeoffs (appendix)", Fig8},
		"fig9":    {"fig9", "Instability vs measure scatter data (appendix)", Fig9},
		"fig10":   {"fig10", "KGE triplet classification, per-dataset thresholds (appendix)", Fig10},
		"fig11":   {"fig11", "BERT instability vs dimension and precision (Section 6.2)", Fig11},
		"fig12":   {"fig12", "fastText subword embeddings (appendix E.1)", Fig12},
		"fig13":   {"fig13", "CNN and BiLSTM-CRF downstream models (appendix E.2)", Fig13},
		"fig14":   {"fig14", "Relaxed seeds and fine-tuned embeddings (appendix E.3/E.4)", Fig14},
		"fig15":   {"fig15", "Downstream learning rate effect (appendix E.5)", Fig15},
		"table8":  {"table8", "Hyperparameter selection for alpha and k (appendix D.3)", Table8},
		"table9":  {"table9", "MR/MPQA versions of Tables 1-3 (appendix D.5)", Table9},
		"table10": {"table10", "Worst-case pairwise selection regret (appendix D.5)", Table10},
		"table11": {"table11", "Worst-case budget oracle distance (appendix D.5)", Table11},
		"table13": {"table13", "Randomness source comparison (appendix E.3)", Table13},
		"prop1":   {"prop1", "Proposition 1 closed form vs Monte-Carlo", Prop1},
	}
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(r *Runner, id string) ([]*Table, error) {
	exp, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return exp.Run(r), nil
}
